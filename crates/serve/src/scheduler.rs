//! The continuous-batching scheduler.
//!
//! One [`Scheduler`] owns an [`AttentionEngine`], a set of registered
//! [`AttentionPlan`]s, per-priority pending queues, and a budgeted
//! [`SlotPool`] of per-sequence KV caches. Time is a **virtual clock** of
//! ticks: every [`Scheduler::tick`] admits what fits, then flattens *all*
//! runnable work — each prefilling sequence's next chunk of query rows
//! plus each decoding sequence's next token row — into **one**
//! [`AttentionEngine::run_batch`] launch per distinct plan (a single
//! launch when the workload shares a plan), exactly the mixed-geometry
//! batch shape the engine's [`gpa_core::Geometry`] windows exist for.
//!
//! ## Admission policy
//!
//! - **Arrival batching**: a request waits [`ServeConfig::arrival_window`]
//!   ticks in its queue before becoming eligible, so bursts admit (and
//!   prefill) together;
//! - **Strict priority, FIFO within a class**: classes admit in ascending
//!   priority value; within a class the queue is FIFO, and an eligible
//!   head that does not fit blocks *all* lower-priority admission (no
//!   overtaking), which is what makes admission starvation-free for any
//!   request that can ever fit;
//! - **KV budget**: admission reserves the sequence's *worst-case* token
//!   count (prompt + every token it may generate) in the [`SlotPool`], so
//!   an admitted sequence can always run to completion without eviction
//!   and the budget can never be exceeded mid-flight. A request whose
//!   total exceeds the whole budget is rejected at submission, before any
//!   cache exists for it.
//!
//! ## Failure atomicity
//!
//! A tick either applies completely or not at all: if any launch fails,
//! every decode-token append is rolled back, this tick's admissions are
//! **un-admitted** (slots released, requests returned to their queue
//! fronts in order), cursors do not advance, and the virtual clock does
//! not move — a failed tick leaves no trace. The returned
//! [`crate::ServeError::Launch`] names the offending request when its
//! geometry provably cannot run under its plan, so the caller can
//! [`Scheduler::cancel`] it and the rest of the workload drains untouched
//! (exercised by `tests/serving_sim.rs`).

use crate::error::ServeError;
use crate::request::{Completion, PlanId, RequestId, ServeRequest, TickReport};
use gpa_core::{AttentionEngine, AttentionPlan, AttentionRequest, AttnError, SlotId, SlotPool};
use gpa_tensor::{Matrix, Real};
use std::collections::{BTreeMap, VecDeque};

/// Admission-policy knobs for a [`Scheduler`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Maximum sequences holding KV slots at once.
    pub max_in_flight: usize,
    /// Total KV token budget across all in-flight sequences (reserved at
    /// admission for each sequence's full length).
    pub kv_budget_tokens: usize,
    /// Ticks a request waits in its queue before it is eligible for
    /// admission — lets bursts of arrivals batch their prefills together.
    pub arrival_window: u64,
    /// Query rows per prefill chunk: each prefilling sequence advances by
    /// at most this many rows per tick, bounding per-tick prefill work so
    /// decode rows never wait behind a whole long prompt.
    pub prefill_chunk: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_in_flight: 32,
            kv_budget_tokens: 1 << 16,
            arrival_window: 0,
            prefill_chunk: 128,
        }
    }
}

struct Pending<T> {
    id: RequestId,
    submitted: u64,
    request: ServeRequest<T>,
}

enum Phase {
    /// `done` prompt rows computed so far.
    Prefill { done: usize },
    /// `done` tokens decoded so far.
    Decode { done: usize },
}

struct InFlight<T> {
    id: RequestId,
    priority: u8,
    plan: usize,
    slot: SlotId,
    prompt: usize,
    phase: Phase,
    q: Matrix<T>,
    k: Matrix<T>,
    v: Matrix<T>,
    out: Matrix<T>,
    submitted: u64,
    admitted: u64,
}

impl<T: Real> InFlight<T> {
    fn total(&self) -> usize {
        self.q.rows()
    }

    fn is_complete(&self) -> bool {
        match self.phase {
            Phase::Prefill { .. } => false,
            Phase::Decode { done } => self.prompt + done == self.total(),
        }
    }
}

/// This tick's unit of work for one sequence.
enum Work {
    /// Prefill query rows `start .. start + rows` against the prompt KV.
    Prefill { start: usize, rows: usize },
    /// Decode token `t` (appends its K/V row, computes one decode row).
    Decode { t: usize },
}

/// The continuous-batching serving scheduler — see the [module
/// docs](self) for the policy and [`crate`] for an end-to-end example.
///
/// `'p` is the lifetime of mask data borrowed by the registered plans
/// (implicit-kernel plans borrow nothing and work with `'static`).
pub struct Scheduler<'p, T> {
    engine: AttentionEngine,
    config: ServeConfig,
    plans: Vec<AttentionPlan<'p>>,
    pending: BTreeMap<u8, VecDeque<Pending<T>>>,
    pending_len: usize,
    in_flight: Vec<InFlight<T>>,
    slots: SlotPool<T>,
    now: u64,
    next_id: u64,
}

impl<'p, T: Real> Scheduler<'p, T> {
    /// Build a scheduler owning `engine` under the given admission policy.
    pub fn new(engine: AttentionEngine, config: ServeConfig) -> Result<Self, ServeError> {
        if config.max_in_flight == 0 {
            return Err(ServeError::BadConfig {
                what: "max_in_flight must be positive",
            });
        }
        if config.prefill_chunk == 0 {
            return Err(ServeError::BadConfig {
                what: "prefill_chunk must be positive",
            });
        }
        if config.kv_budget_tokens == 0 {
            return Err(ServeError::BadConfig {
                what: "kv_budget_tokens must be positive",
            });
        }
        Ok(Scheduler {
            engine,
            config,
            plans: Vec::new(),
            pending: BTreeMap::new(),
            pending_len: 0,
            in_flight: Vec::new(),
            slots: SlotPool::new(config.kv_budget_tokens),
            now: 0,
            next_id: 0,
        })
    }

    /// Register a compiled plan; submitted requests name it by the
    /// returned id. Dense-baseline plans are rejected — they have no
    /// prefill-window or decode-row form.
    pub fn register_plan(&mut self, plan: AttentionPlan<'p>) -> Result<PlanId, ServeError> {
        if !plan.is_composable() {
            return Err(ServeError::BadRequest {
                what: "dense baseline plans have no serving form",
            });
        }
        self.plans.push(plan);
        Ok(PlanId(self.plans.len() - 1))
    }

    /// A registered plan.
    ///
    /// # Panics
    /// Panics if `id` did not come from this scheduler's
    /// [`Self::register_plan`].
    pub fn plan(&self, id: PlanId) -> &AttentionPlan<'p> {
        &self.plans[id.0]
    }

    /// The engine this scheduler launches through.
    pub fn engine(&self) -> &AttentionEngine {
        &self.engine
    }

    /// The admission policy.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Current virtual time (ticks executed so far).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Requests queued but not yet admitted.
    pub fn pending_len(&self) -> usize {
        self.pending_len
    }

    /// Sequences currently holding KV slots.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Pending + in-flight sequences.
    pub fn outstanding(&self) -> usize {
        self.pending_len + self.in_flight.len()
    }

    /// True when nothing is pending or in flight.
    pub fn is_idle(&self) -> bool {
        self.outstanding() == 0
    }

    /// The KV token budget.
    pub fn kv_budget_tokens(&self) -> usize {
        self.slots.budget_tokens()
    }

    /// KV tokens reserved by in-flight sequences.
    pub fn kv_reserved_tokens(&self) -> usize {
        self.slots.reserved_tokens()
    }

    /// KV tokens actually cached right now.
    pub fn kv_used_tokens(&self) -> usize {
        self.slots.used_tokens()
    }

    /// Assert the KV budget invariants (reservations within the budget,
    /// every cache within its reservation) — the serving simulation calls
    /// this after every tick.
    ///
    /// # Panics
    /// Panics when an invariant is violated.
    pub fn assert_kv_invariants(&self) {
        self.slots.assert_within_budget();
    }

    /// Queue a request. Validation is immediate (shape checks, plan
    /// lookup, and the can-it-ever-fit budget check); admission happens on
    /// a later [`Self::tick`]. No KV cache exists — and nothing is
    /// mutated — for a rejected request.
    pub fn submit(&mut self, request: ServeRequest<T>) -> Result<RequestId, ServeError> {
        if self.plans.get(request.plan.0).is_none() {
            return Err(ServeError::UnknownPlan);
        }
        let total = request.q.rows();
        if total == 0 {
            return Err(ServeError::BadRequest {
                what: "a request needs at least one token",
            });
        }
        if request.k.rows() != total || request.v.rows() != total {
            return Err(ServeError::BadRequest {
                what: "Q/K/V row counts differ",
            });
        }
        if request.q.cols() != request.k.cols() {
            return Err(ServeError::BadRequest {
                what: "Q and K disagree on the key dimension",
            });
        }
        if request.q.cols() == 0 || request.v.cols() == 0 {
            return Err(ServeError::BadRequest {
                what: "key/value dimensions must be positive",
            });
        }
        if request.prompt == 0 || request.prompt > total {
            return Err(ServeError::BadRequest {
                what: "prompt must cover between 1 and all of the rows",
            });
        }
        if total > self.slots.budget_tokens() {
            return Err(ServeError::OverBudget {
                need: total,
                budget: self.slots.budget_tokens(),
            });
        }
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.pending
            .entry(request.priority)
            .or_default()
            .push_back(Pending {
                id,
                submitted: self.now,
                request,
            });
        self.pending_len += 1;
        Ok(id)
    }

    /// Drop a request, pending or in flight (releasing its KV slot).
    /// Returns false when the id is unknown or already completed.
    pub fn cancel(&mut self, id: RequestId) -> bool {
        for queue in self.pending.values_mut() {
            if let Some(pos) = queue.iter().position(|p| p.id == id) {
                queue.remove(pos);
                self.pending_len -= 1;
                return true;
            }
        }
        if let Some(pos) = self.in_flight.iter().position(|s| s.id == id) {
            let seq = self.in_flight.remove(pos);
            self.slots.release(seq.slot);
            return true;
        }
        false
    }

    /// Admit eligible pending requests in (priority class, FIFO) order
    /// until one does not fit; admission appends the prompt's K/V rows to
    /// the sequence's fresh cache.
    fn admit(&mut self, now: u64) -> Vec<RequestId> {
        let mut admitted = Vec::new();
        'classes: for queue in self.pending.values_mut() {
            while let Some(front) = queue.front() {
                if now < front.submitted + self.config.arrival_window {
                    // Class head still batching arrivals; it does not
                    // block other classes (FIFO within the class holds —
                    // later same-class requests are younger still).
                    break;
                }
                let total = front.request.q.rows();
                if self.in_flight.len() >= self.config.max_in_flight
                    || !self.slots.can_reserve(total)
                {
                    // An eligible head that cannot be placed blocks all
                    // lower-priority admission: no overtaking, so every
                    // placeable request is eventually admitted.
                    break 'classes;
                }
                let p = queue.pop_front().expect("front exists");
                self.pending_len -= 1;
                let r = p.request;
                let slot = self
                    .slots
                    .try_allocate(1, r.q.cols(), r.v.cols(), total)
                    .expect("reservation checked above");
                self.slots.cache_mut(slot).extend(
                    0,
                    &r.k.rows_slice(0, r.prompt),
                    &r.v.rows_slice(0, r.prompt),
                );
                let out = Matrix::zeros(total, r.v.cols());
                self.in_flight.push(InFlight {
                    id: p.id,
                    priority: r.priority,
                    plan: r.plan.0,
                    slot,
                    prompt: r.prompt,
                    phase: Phase::Prefill { done: 0 },
                    q: r.q,
                    k: r.k,
                    v: r.v,
                    out,
                    submitted: p.submitted,
                    admitted: now,
                });
                admitted.push(p.id);
            }
        }
        admitted
    }

    /// Advance the virtual clock by one tick: admit, gather every
    /// in-flight sequence's next unit of work, launch it all batched (one
    /// `run_batch` per distinct plan), apply outputs, and retire finished
    /// sequences.
    ///
    /// On a launch failure the tick is rolled back atomically — appends
    /// truncated, this tick's admissions un-admitted, no cursor or clock
    /// movement — and the returned error names the offending request when
    /// identifiable; see the [module docs](self).
    pub fn tick(&mut self) -> Result<TickReport<T>, ServeError> {
        let now = self.now;
        let admitted = self.admit(now);

        // Pre-append cache lengths of every in-flight sequence — the
        // rollback point if any launch below fails.
        let priors: Vec<usize> = self
            .in_flight
            .iter()
            .map(|s| self.slots.cache(s.slot).len())
            .collect();

        // One unit of work per in-flight sequence; decode work appends its
        // token's K/V row now (rolled back on failure).
        let work: Vec<(usize, Work)> = self
            .in_flight
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let w = match s.phase {
                    Phase::Prefill { done } => Work::Prefill {
                        start: done,
                        rows: self.config.prefill_chunk.min(s.prompt - done),
                    },
                    Phase::Decode { done } => Work::Decode { t: s.prompt + done },
                };
                (i, w)
            })
            .collect();
        for (i, w) in &work {
            if let Work::Decode { t } = w {
                let s = &self.in_flight[*i];
                self.slots
                    .cache_mut(s.slot)
                    .append(0, s.k.row(*t), s.v.row(*t));
            }
        }

        // Group by plan (BTreeMap: deterministic launch order) and launch.
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (wi, (i, _)) in work.iter().enumerate() {
            groups.entry(self.in_flight[*i].plan).or_default().push(wi);
        }
        let q_windows: Vec<Matrix<T>> = work
            .iter()
            .map(|(i, w)| {
                let s = &self.in_flight[*i];
                match *w {
                    Work::Prefill { start, rows } => s.q.rows_slice(start, start + rows),
                    Work::Decode { t } => s.q.rows_slice(t, t + 1),
                }
            })
            .collect();
        let mut outputs: Vec<Option<Matrix<T>>> = (0..work.len()).map(|_| None).collect();
        let mut rows_computed = 0usize;
        let mut launches = 0usize;
        let mut failure: Option<(usize, AttnError)> = None;
        for (plan_idx, items) in &groups {
            let requests: Vec<AttentionRequest<'_, T>> = items
                .iter()
                .map(|&wi| {
                    let (i, w) = &work[wi];
                    let cache = self.slots.cache(self.in_flight[*i].slot);
                    match *w {
                        Work::Prefill { start, .. } => AttentionRequest::windowed(
                            &q_windows[wi],
                            cache.k(0),
                            cache.v(0),
                            start,
                        ),
                        Work::Decode { .. } => {
                            AttentionRequest::decode(&q_windows[wi], cache.k(0), cache.v(0))
                        }
                    }
                })
                .collect();
            match self.engine.run_batch(&self.plans[*plan_idx], &requests) {
                Ok(outs) => {
                    launches += 1;
                    rows_computed += outs.iter().map(Matrix::rows).sum::<usize>();
                    for (&wi, out) in items.iter().zip(outs) {
                        outputs[wi] = Some(out);
                    }
                }
                Err(e) => {
                    failure = Some((*plan_idx, e));
                    break;
                }
            }
        }
        if let Some((failed_plan, e)) = failure {
            // The engine reports one error per batch; re-check the failed
            // group's geometries against the plan's compiled constraints
            // to name the offender, so callers can cancel it and recover.
            let offender = groups[&failed_plan].iter().find_map(|&wi| {
                let (i, w) = &work[wi];
                let s = &self.in_flight[*i];
                let plan = &self.plans[failed_plan];
                let (kv_rows, q_end) = match *w {
                    Work::Prefill { start, rows } => (s.prompt, start + rows),
                    Work::Decode { t } => (t + 1, t + 1),
                };
                let pinned_wrong = plan.kv_pin().is_some_and(|pin| kv_rows != pin);
                let out_of_bound = plan.q_bound().is_some_and(|bound| q_end > bound);
                (pinned_wrong || out_of_bound).then_some(s.id)
            });
            // Atomic rollback, part 1: every pre-existing sequence's cache
            // back to its pre-append length, no cursor or clock movement.
            for (s, &prior) in self.in_flight.iter().zip(&priors) {
                self.slots.cache_mut(s.slot).truncate(prior);
            }
            // Part 2: un-admit this tick's admissions — release their
            // slots and push them back to their queue fronts (popping from
            // the in-flight tail and pushing front restores FIFO order),
            // so a failed tick leaves NO trace, admissions included.
            for _ in 0..admitted.len() {
                let s = self.in_flight.pop().expect("admissions sit at the tail");
                self.slots.release(s.slot);
                self.pending
                    .entry(s.priority)
                    .or_default()
                    .push_front(Pending {
                        id: s.id,
                        submitted: s.submitted,
                        request: ServeRequest {
                            plan: PlanId(s.plan),
                            priority: s.priority,
                            prompt: s.prompt,
                            q: s.q,
                            k: s.k,
                            v: s.v,
                        },
                    });
                self.pending_len += 1;
            }
            return Err(ServeError::Launch {
                request: offender,
                source: e,
            });
        }

        // Apply outputs and advance each sequence's cursor.
        for ((i, w), out) in work.iter().zip(outputs) {
            let out = out.expect("all launches succeeded");
            let s = &mut self.in_flight[*i];
            match *w {
                Work::Prefill { start, rows } => {
                    for r in 0..rows {
                        s.out.row_mut(start + r).copy_from_slice(out.row(r));
                    }
                    let done = start + rows;
                    s.phase = if done == s.prompt {
                        Phase::Decode { done: 0 }
                    } else {
                        Phase::Prefill { done }
                    };
                }
                Work::Decode { t } => {
                    s.out.row_mut(t).copy_from_slice(out.row(0));
                    s.phase = Phase::Decode {
                        done: t + 1 - s.prompt,
                    };
                }
            }
        }

        // Retire completed sequences (in in-flight — i.e. admission —
        // order), releasing their KV reservations.
        let mut completed = Vec::new();
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].is_complete() {
                let s = self.in_flight.remove(i);
                self.slots.release(s.slot);
                completed.push(Completion {
                    id: s.id,
                    priority: s.priority,
                    plan: PlanId(s.plan),
                    output: s.out,
                    submitted: s.submitted,
                    admitted: s.admitted,
                    completed: now,
                });
            } else {
                i += 1;
            }
        }

        self.now += 1;
        Ok(TickReport {
            tick: now,
            admitted,
            launches,
            rows_computed,
            completed,
        })
    }
}

impl<T: Real> std::fmt::Debug for Scheduler<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("plans", &self.plans.len())
            .field("pending", &self.pending_len)
            .field("in_flight", &self.in_flight.len())
            .field("kv_reserved", &self.slots.reserved_tokens())
            .field("kv_budget", &self.slots.budget_tokens())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_core::AttentionKernel;
    use gpa_tensor::init::qkv;

    fn request(
        plan: PlanId,
        priority: u8,
        prompt: usize,
        total: usize,
        seed: u64,
    ) -> ServeRequest<f64> {
        let (q, k, v) = qkv::<f64>(total, 4, seed);
        ServeRequest {
            plan,
            priority,
            prompt,
            q,
            k,
            v,
        }
    }

    fn scheduler(config: ServeConfig) -> (Scheduler<'static, f64>, PlanId) {
        let mut s = Scheduler::new(AttentionEngine::with_threads(2), config).unwrap();
        let plan = s
            .register_plan(AttentionPlan::single(AttentionKernel::Local { n: 2 }).unwrap())
            .unwrap();
        (s, plan)
    }

    #[test]
    fn config_validation() {
        let bad = ServeConfig {
            max_in_flight: 0,
            ..ServeConfig::default()
        };
        assert!(matches!(
            Scheduler::<f64>::new(AttentionEngine::with_threads(1), bad),
            Err(ServeError::BadConfig { .. })
        ));
        let bad = ServeConfig {
            prefill_chunk: 0,
            ..ServeConfig::default()
        };
        assert!(Scheduler::<f64>::new(AttentionEngine::with_threads(1), bad).is_err());
        let bad = ServeConfig {
            kv_budget_tokens: 0,
            ..ServeConfig::default()
        };
        assert!(Scheduler::<f64>::new(AttentionEngine::with_threads(1), bad).is_err());
    }

    #[test]
    fn submit_validation_rejects_bad_requests() {
        let (mut s, plan) = scheduler(ServeConfig {
            kv_budget_tokens: 16,
            ..ServeConfig::default()
        });
        // Unknown plan.
        let r = request(PlanId(9), 0, 2, 4, 1);
        assert_eq!(s.submit(r), Err(ServeError::UnknownPlan));
        // Prompt outside 1..=total.
        let r = request(plan, 0, 0, 4, 2);
        assert!(matches!(s.submit(r), Err(ServeError::BadRequest { .. })));
        let r = request(plan, 0, 5, 4, 3);
        assert!(matches!(s.submit(r), Err(ServeError::BadRequest { .. })));
        // Mismatched K rows.
        let mut r = request(plan, 0, 2, 4, 4);
        r.k = Matrix::zeros(3, 4);
        assert!(matches!(s.submit(r), Err(ServeError::BadRequest { .. })));
        // Over the whole budget: rejected at submission.
        let r = request(plan, 0, 2, 17, 5);
        assert_eq!(
            s.submit(r),
            Err(ServeError::OverBudget {
                need: 17,
                budget: 16
            })
        );
        assert!(s.is_idle(), "rejected requests leave no state behind");
        assert_eq!(s.kv_used_tokens(), 0);
    }

    #[test]
    fn dense_plans_cannot_register() {
        let mut s: Scheduler<'static, f64> =
            Scheduler::new(AttentionEngine::with_threads(1), ServeConfig::default()).unwrap();
        assert!(matches!(
            s.register_plan(AttentionPlan::single(AttentionKernel::Flash).unwrap()),
            Err(ServeError::BadRequest { .. })
        ));
    }

    #[test]
    fn single_sequence_runs_to_completion() {
        let (mut s, plan) = scheduler(ServeConfig {
            max_in_flight: 4,
            kv_budget_tokens: 64,
            arrival_window: 0,
            prefill_chunk: 3,
        });
        let id = s.submit(request(plan, 0, 7, 10, 11)).unwrap();
        let mut completions = Vec::new();
        for _ in 0..32 {
            completions.extend(s.tick().unwrap().completed);
            if s.is_idle() {
                break;
            }
        }
        assert!(s.is_idle());
        assert_eq!(completions.len(), 1);
        let c = &completions[0];
        assert_eq!(c.id, id);
        assert_eq!(c.output.shape(), (10, 4));
        // ceil(7/3) = 3 prefill ticks + 3 decode ticks, admitted at tick 0.
        assert_eq!(c.admitted, 0);
        assert_eq!(c.completed, 5);
        assert_eq!(s.kv_reserved_tokens(), 0, "slot released on completion");
    }

    #[test]
    fn admission_respects_budget_and_in_flight_caps() {
        let (mut s, plan) = scheduler(ServeConfig {
            max_in_flight: 1,
            kv_budget_tokens: 8,
            arrival_window: 0,
            prefill_chunk: 8,
        });
        // Both fit the budget alone; the cap admits them one at a time.
        s.submit(request(plan, 0, 2, 3, 21)).unwrap();
        s.submit(request(plan, 0, 2, 3, 22)).unwrap();
        let r = s.tick().unwrap();
        assert_eq!(r.admitted.len(), 1);
        assert_eq!(s.in_flight_len(), 1);
        assert_eq!(s.pending_len(), 1);
        s.assert_kv_invariants();
        for _ in 0..16 {
            if s.is_idle() {
                break;
            }
            s.tick().unwrap();
            s.assert_kv_invariants();
        }
        assert!(s.is_idle());
    }

    #[test]
    fn arrival_window_delays_admission() {
        let (mut s, plan) = scheduler(ServeConfig {
            arrival_window: 2,
            ..ServeConfig::default()
        });
        s.submit(request(plan, 0, 2, 2, 31)).unwrap();
        assert!(s.tick().unwrap().admitted.is_empty(), "tick 0: batching");
        assert!(s.tick().unwrap().admitted.is_empty(), "tick 1: batching");
        let r = s.tick().unwrap();
        assert_eq!(r.admitted.len(), 1, "tick 2: eligible");
    }

    #[test]
    fn strict_priority_with_fifo_within_a_class() {
        let (mut s, plan) = scheduler(ServeConfig {
            max_in_flight: 1,
            kv_budget_tokens: 64,
            arrival_window: 0,
            prefill_chunk: 8,
        });
        let low_a = s.submit(request(plan, 3, 2, 2, 41)).unwrap();
        let low_b = s.submit(request(plan, 3, 2, 2, 42)).unwrap();
        let high = s.submit(request(plan, 0, 2, 2, 43)).unwrap();
        let mut order = Vec::new();
        for _ in 0..16 {
            order.extend(s.tick().unwrap().admitted);
            if s.is_idle() {
                break;
            }
        }
        assert_eq!(order, vec![high, low_a, low_b]);
    }

    #[test]
    fn cancel_pending_and_in_flight() {
        let (mut s, plan) = scheduler(ServeConfig {
            max_in_flight: 1,
            ..ServeConfig::default()
        });
        let a = s.submit(request(plan, 0, 4, 8, 51)).unwrap();
        let b = s.submit(request(plan, 0, 4, 8, 52)).unwrap();
        s.tick().unwrap(); // admits a only (cap 1)
        assert!(s.cancel(b), "pending cancel");
        assert!(s.cancel(a), "in-flight cancel");
        assert!(!s.cancel(a), "double cancel is a no-op");
        assert_eq!(s.kv_reserved_tokens(), 0);
        assert!(s.is_idle());
    }

    #[test]
    fn debug_formats() {
        let (s, _) = scheduler(ServeConfig::default());
        assert!(format!("{s:?}").contains("Scheduler"));
    }
}
