//! The continuous-batching scheduler.
//!
//! One [`Scheduler`] owns an [`AttentionEngine`], a set of registered
//! [`AttentionPlan`]s and [`DecoderModel`]s, per-priority pending queues,
//! and a block-paged [`PagePool`] of per-sequence KV caches. Time is a
//! **virtual clock** of ticks: every [`Scheduler::tick`] admits what fits,
//! then flattens *all* runnable work — each prefilling sequence's next
//! chunk of query rows plus each decoding sequence's next token row —
//! into **one** [`AttentionEngine::run_batch`] launch per distinct plan (a
//! single launch when the workload shares a plan), exactly the
//! mixed-geometry batch shape the engine's [`gpa_core::Geometry`] windows
//! exist for.
//!
//! ## Plan sequences and model sequences
//!
//! A request targets either a bare plan ([`Scheduler::submit`] — explicit
//! q/k/v rows through one attention kernel) or a registered decoder model
//! ([`Scheduler::submit_model`] — embedding rows through an N-layer stack
//! of [`gpa_core::MultiHeadAttention`] layers with heterogeneous plans).
//! Both flavors share the queues, the page pool, and the tick: model
//! sequences group by model and advance through
//! [`DecoderModel::advance_batched`] (one launch per layer, all sequences
//! × heads flattened), and every page of every layer's cache is counted
//! by the same admission and preemption arithmetic — an `L`-layer
//! sequence bills `L ×` the pages of a plan sequence of the same length.
//!
//! ## Admission policy
//!
//! - **Arrival batching**: a request waits [`ServeConfig::arrival_window`]
//!   ticks in its queue before becoming eligible, so bursts admit (and
//!   prefill) together;
//! - **Strict priority, FIFO within a class**: classes admit in ascending
//!   priority value; within a class, preempted sequences resume before
//!   anything still pending (they are strictly older), the queue is FIFO,
//!   and an eligible head that does not fit blocks *all* lower-priority
//!   admission (no overtaking), which is what makes admission
//!   starvation-free for any request that can ever fit;
//! - **Paged KV** ([`AdmissionMode::PagedUsage`], the default): a
//!   sequence is admitted on its *current* page need — the pages its
//!   prompt occupies right now — not its worst case, so short prompts
//!   with long decode budgets pack the pool instead of reserving it. The
//!   pages this tick's appends are about to consume (decode K/V rows, and
//!   every layer of each model sequence's next prefill chunk) are held
//!   back from admission, so newcomers can never take a page out from
//!   under a running sequence within the tick. A request whose *total*
//!   page need exceeds the whole pool is rejected at submission, before
//!   any cache exists for it.
//! - **Worst-case reservation** ([`AdmissionMode::WorstCaseReserve`]):
//!   the legacy policy, kept for A/B comparison — admission reserves
//!   `pages_for(prompt + decode)` (× layers for models) up front in a
//!   ledger, so an admitted sequence can always grow to completion and
//!   preemption never fires.
//!
//! ## Preemption
//!
//! Paged admission oversubscribes by design, so a tick can find that its
//! appends need more pages than are free. The scheduler then **preempts**:
//! walking sequences from most urgent (lowest priority class, earliest
//! admission) to least, it grants each append by evicting victims from
//! the opposite end — the lowest-priority, most-recently admitted
//! sequence first. What happens to a victim's cache is the
//! [`EvictionMode`]:
//!
//! - **Recompute** (the default): a plan victim's pages are released and
//!   its cache dropped — resume re-extends the retained
//!   `prompt + generated` K/V rows bit-identically, since they are
//!   deterministic inputs. A model victim's per-layer caches hold
//!   *computed* K/V the scheduler cannot cheaply rebuild, so they are
//!   taken out of the pool whole and re-adopted — all layers or none —
//!   on resume.
//! - **Swap**: the victim's whole cache stack moves into a host-side
//!   [`gpa_core::SwapArena`] (pages released all the same) and resume
//!   splices it back via [`gpa_core::PagePool::try_adopt`] — `O(1)` in
//!   context length instead of `O(context)`. The arena's byte cap
//!   ([`ServeConfig::swap_bytes`]) bounds host memory; a victim that
//!   does not fit falls back to the Recompute behavior for that park.
//!
//! Either way the victim parks on its class's resume queue with its
//! computed output rows and phase cursor, and continues exactly where it
//! stopped, so every completed output is still **bitwise** the
//! sequential reference — the modes differ in resume *cost*, never in
//! results or schedule (both use the same page arithmetic). The most
//! urgent in-flight sequence is never evicted and always advances, so
//! preemption cannot livelock.
//!
//! ## Failure atomicity
//!
//! A tick either applies completely or not at all: if any launch fails,
//! every append is rolled back — each plan sequence's cache and every
//! layer of each model sequence's state truncated to its pre-tick length
//! (pages returned) — this tick's preemptions are **un-preempted**
//! (victims rebuilt in place, page tables and queue positions restored),
//! this tick's admissions are **un-admitted** (pages released, requests
//! returned to their queue fronts in order), cursors do not advance, and
//! the virtual clock does not move — a failed tick leaves no trace. The
//! returned [`crate::ServeError::Launch`] names the offending request
//! when its geometry provably cannot run under its plan (or under any
//! layer of its model), so the caller can [`Scheduler::cancel`] it and
//! the rest of the workload drains untouched (exercised by
//! `tests/serving_sim.rs`).

use crate::error::ServeError;
use crate::request::{
    Completion, ModelId, ModelRequest, PatternChoice, PlanId, RequestId, ServeRequest, ServeTarget,
    TickReport,
};
use gpa_core::{
    AttentionEngine, AttentionPlan, AttentionRequest, AttnError, KvCache, PagePool, RoutedSpec,
    SeqId, SwapArena, SwapTicket,
};
use gpa_model::{DecoderModel, ModelError, ModelKvState, ModelWorkItem};
use gpa_tensor::{Matrix, Real};
use std::collections::{BTreeMap, VecDeque};

/// How admission charges a sequence against the KV page pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionMode {
    /// Admit on *current* page usage: a sequence costs the pages its
    /// cached tokens occupy right now, decode growth allocates pages on
    /// append, and page exhaustion is resolved by preemption. The
    /// PagedAttention policy, and the default.
    #[default]
    PagedUsage,
    /// Admit on *worst-case* reservation: a sequence reserves pages for
    /// its full prompt + decode length up front, so it can always run to
    /// completion and preemption never fires. The legacy policy, kept as
    /// the A/B baseline — it strands the difference between reserved and
    /// used pages.
    WorstCaseReserve,
}

/// What happens to a preemption victim's KV cache.
///
/// Either way the victim's pages go back to the pool and its computed
/// output rows are kept — the modes differ only in how the cache comes
/// back, so completions are **bitwise identical** across modes and so is
/// the schedule (both modes use the same page arithmetic). See
/// `docs/SERVING.md` for the full state machine.
///
/// ```
/// use gpa_core::{AttentionEngine, AttentionKernel, AttentionPlan};
/// use gpa_serve::{AdmissionMode, EvictionMode, ServeConfig, ServeRequest, Scheduler};
/// use gpa_tensor::init;
///
/// // The same two-sequence page squeeze, once per mode: the victim's
/// // resume path differs, the bits and the schedule do not.
/// let mut outputs = Vec::new();
/// for eviction in [EvictionMode::Recompute, EvictionMode::Swap] {
///     let mut s: Scheduler<'static, f32> = Scheduler::new(
///         AttentionEngine::with_threads(1),
///         ServeConfig {
///             max_in_flight: 2,
///             kv_pages: 3,
///             page_size: 2,
///             arrival_window: 0,
///             prefill_chunk: 4,
///             admission: AdmissionMode::PagedUsage,
///             eviction,
///             swap_bytes: usize::MAX, // unbounded arena (Swap mode only)
///         },
///     )
///     .unwrap();
///     let plan = s
///         .register_plan(AttentionPlan::single(AttentionKernel::Local { n: 2 }).unwrap())
///         .unwrap();
///     for seed in [1, 2] {
///         let (q, k, v) = init::qkv::<f32>(6, 4, seed);
///         s.submit(ServeRequest { pattern: plan.into(), priority: 0, prompt: 2, q, k, v })
///             .unwrap();
///     }
///     let mut done = Vec::new();
///     while !s.is_idle() {
///         done.extend(s.tick().unwrap().completed);
///     }
///     assert!(s.preemption_events() > 0, "the squeeze must preempt");
///     if eviction == EvictionMode::Swap {
///         assert!(s.swap_peak_bytes() > 0, "the victim transited the arena");
///         assert_eq!(s.swap_parked_bytes(), 0, "…and came back out");
///     }
///     outputs.push(done.into_iter().map(|c| c.output).collect::<Vec<_>>());
/// }
/// assert_eq!(outputs[0], outputs[1], "eviction mode never changes the bits");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvictionMode {
    /// Drop a plan victim's cache and re-extend its retained K/V input
    /// rows on resume (model victims always retain their computed caches
    /// inline). Resume cost grows with context length; no arena memory.
    /// The default.
    #[default]
    Recompute,
    /// Park the victim's caches in a host-side [`SwapArena`] and splice
    /// them back on resume — `O(1)` in context length, at the cost of
    /// holding the parked bytes (capped by [`ServeConfig::swap_bytes`]).
    /// A victim the arena cannot hold falls back to the `Recompute`
    /// behavior for that park, counted by [`Scheduler::swap_fallbacks`].
    Swap,
}

/// Admission-policy knobs for a [`Scheduler`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Maximum sequences holding KV pages at once.
    pub max_in_flight: usize,
    /// Total pages in the KV pool.
    pub kv_pages: usize,
    /// Cached tokens per page.
    pub page_size: usize,
    /// Ticks a request waits in its queue before it is eligible for
    /// admission — lets bursts of arrivals batch their prefills together.
    pub arrival_window: u64,
    /// Query rows per prefill chunk: each prefilling sequence advances by
    /// at most this many rows per tick, bounding per-tick prefill work so
    /// decode rows never wait behind a whole long prompt.
    pub prefill_chunk: usize,
    /// How admission charges sequences against the pool.
    pub admission: AdmissionMode,
    /// What happens to a preemption victim's KV cache.
    pub eviction: EvictionMode,
    /// Byte cap of the host-side [`SwapArena`] under
    /// [`EvictionMode::Swap`] (unused — but harmless — under
    /// `Recompute`). A victim that would push the arena past this cap
    /// falls back to recompute for that park.
    pub swap_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            // 4096 × 16 = the same 65536-token capacity the old
            // token-budget default provided.
            max_in_flight: 32,
            kv_pages: 4096,
            page_size: 16,
            arrival_window: 0,
            prefill_chunk: 128,
            admission: AdmissionMode::PagedUsage,
            eviction: EvictionMode::Recompute,
            swap_bytes: usize::MAX,
        }
    }
}

/// A queued request of either flavor.
enum AnyRequest<T> {
    Attn(ServeRequest<T>),
    Model(ModelRequest<T>),
}

struct Pending<T> {
    id: RequestId,
    submitted: u64,
    request: AnyRequest<T>,
}

#[derive(Clone, Copy)]
enum Phase {
    /// `done` prompt rows computed so far.
    Prefill { done: usize },
    /// `done` tokens decoded so far.
    Decode { done: usize },
}

/// Tokens the sequence's cache holds at this phase cursor — what a
/// preempted sequence must have resident again to resume. A plan
/// sequence's whole prompt is cached at admission; a model sequence's
/// per-layer caches grow chunk by chunk inside the layer advance, so
/// mid-prefill they hold exactly `done` tokens.
fn cursor_tokens(phase: Phase, prompt: usize, model: bool) -> usize {
    match phase {
        Phase::Prefill { done } => {
            if model {
                done
            } else {
                prompt
            }
        }
        Phase::Decode { done } => prompt + done,
    }
}

/// Target-specific in-flight state: the request's owned inputs plus its
/// live KV (one pooled cache for a plan sequence; one per layer for a
/// model sequence).
enum Payload<T> {
    Attn {
        /// The resolved plan index — fixed for the sequence's lifetime
        /// once admission resolves `pattern`.
        plan: usize,
        /// The choice as submitted, kept so an un-admitted request goes
        /// back to its queue unresolved.
        pattern: PatternChoice,
        seq: SeqId,
        q: Matrix<T>,
        k: Matrix<T>,
        v: Matrix<T>,
    },
    Model {
        model: usize,
        x: Matrix<T>,
        state: ModelKvState,
    },
}

struct InFlight<T> {
    id: RequestId,
    priority: u8,
    prompt: usize,
    phase: Phase,
    out: Matrix<T>,
    submitted: u64,
    /// First admission tick — preemption does not reset it.
    admitted: u64,
    /// Times this sequence has been preempted so far.
    preemptions: u32,
    /// Pages reserved in the ledger ([`AdmissionMode::WorstCaseReserve`]
    /// only; 0 under paged admission).
    reserved_pages: usize,
    payload: Payload<T>,
}

impl<T: Real> InFlight<T> {
    fn total(&self) -> usize {
        match &self.payload {
            Payload::Attn { q, .. } => q.rows(),
            Payload::Model { x, .. } => x.rows(),
        }
    }

    fn target(&self) -> ServeTarget {
        match &self.payload {
            Payload::Attn { plan, .. } => ServeTarget::Plan(PlanId(*plan)),
            Payload::Model { model, .. } => ServeTarget::Model(ModelId(*model)),
        }
    }

    fn is_complete(&self) -> bool {
        match self.phase {
            Phase::Prefill { .. } => false,
            Phase::Decode { done } => self.prompt + done == self.total(),
        }
    }

    /// Evict this sequence's KV from the pool (pages always come back to
    /// the free list; the victim's computed output rows are always kept).
    /// What happens to the cache itself depends on `mode`:
    ///
    /// - [`EvictionMode::Recompute`]: a plan sequence's cache is dropped
    ///   (its K/V rows are inputs the resume path re-extends
    ///   bit-identically); a model sequence's per-layer caches hold
    ///   *computed* K/V, so they are retained inline and re-adopted on
    ///   resume.
    /// - [`EvictionMode::Swap`]: the cache stack parks in the host-side
    ///   [`SwapArena`] and resume splices it back, `O(1)` in context
    ///   length. When the arena's byte cap refuses the stack, the park
    ///   falls back to the `Recompute` behavior — parking never fails.
    fn park(
        self,
        pool: &mut PagePool<T>,
        arena: &mut SwapArena<T>,
        mode: EvictionMode,
    ) -> Parked<T> {
        let payload = match self.payload {
            Payload::Attn {
                plan,
                pattern,
                seq,
                q,
                k,
                v,
            } => {
                let cache = pool.release(seq);
                let kv = match mode {
                    EvictionMode::Recompute => ParkedKv::Dropped,
                    EvictionMode::Swap => match arena.try_park(vec![cache]) {
                        Ok(ticket) => ParkedKv::Swapped(ticket),
                        Err(_) => ParkedKv::Dropped,
                    },
                };
                ParkedPayload::Attn {
                    plan,
                    pattern,
                    q,
                    k,
                    v,
                    kv,
                }
            }
            Payload::Model { model, x, state } => {
                let caches = state.release(pool);
                let kv = match mode {
                    EvictionMode::Recompute => ParkedKv::Inline(caches),
                    EvictionMode::Swap => match arena.try_park(caches) {
                        Ok(ticket) => ParkedKv::Swapped(ticket),
                        Err(caches) => ParkedKv::Inline(caches),
                    },
                };
                ParkedPayload::Model { model, x, kv }
            }
        };
        Parked {
            id: self.id,
            priority: self.priority,
            prompt: self.prompt,
            phase: self.phase,
            out: self.out,
            submitted: self.submitted,
            admitted: self.admitted,
            preemptions: self.preemptions,
            payload,
        }
    }
}

/// Where a parked sequence's KV lives while it waits to resume.
enum ParkedKv<T> {
    /// Dropped at park; resume re-extends the retained input rows (plan
    /// sequences only — their K/V rows are deterministic inputs).
    Dropped,
    /// Parked in the scheduler's [`SwapArena`]; resume takes the stack
    /// and re-adopts its pages, `O(1)` in context length.
    Swapped(SwapTicket),
    /// Retained inline (model sequences under [`EvictionMode::Recompute`],
    /// or as the fallback when the arena refuses the stack).
    Inline(Vec<KvCache<T>>),
}

/// Target-specific parked state — see [`InFlight::park`] for which
/// [`ParkedKv`] variants each target uses.
enum ParkedPayload<T> {
    Attn {
        plan: usize,
        pattern: PatternChoice,
        q: Matrix<T>,
        k: Matrix<T>,
        v: Matrix<T>,
        kv: ParkedKv<T>,
    },
    Model {
        model: usize,
        x: Matrix<T>,
        kv: ParkedKv<T>,
    },
}

/// A preempted sequence waiting on a resume queue: everything needed to
/// repopulate the pool and continue — computed output rows included, so
/// no row is ever computed twice.
struct Parked<T> {
    id: RequestId,
    priority: u8,
    prompt: usize,
    phase: Phase,
    out: Matrix<T>,
    submitted: u64,
    admitted: u64,
    preemptions: u32,
    payload: ParkedPayload<T>,
}

impl<T: Real> Parked<T> {
    /// Tokens that must be resident again for this sequence to continue.
    fn retained_tokens(&self) -> usize {
        cursor_tokens(
            self.phase,
            self.prompt,
            matches!(self.payload, ParkedPayload::Model { .. }),
        )
    }

    /// True when this sequence's KV sits in the [`SwapArena`].
    fn is_swapped(&self) -> bool {
        matches!(
            self.payload,
            ParkedPayload::Attn {
                kv: ParkedKv::Swapped(_),
                ..
            } | ParkedPayload::Model {
                kv: ParkedKv::Swapped(_),
                ..
            }
        )
    }

    /// The arena ticket, when this sequence's KV sits in the arena.
    fn swap_ticket(&self) -> Option<SwapTicket> {
        match &self.payload {
            ParkedPayload::Attn {
                kv: ParkedKv::Swapped(t),
                ..
            }
            | ParkedPayload::Model {
                kv: ParkedKv::Swapped(t),
                ..
            } => Some(*t),
            _ => None,
        }
    }

    /// Re-admit: splice a swapped cache stack back out of the arena
    /// (routing state rides the caches), rebuild a dropped plan cache
    /// from its retained input rows, or re-adopt inline model caches.
    /// `spec` is the resolved plan's routing spec for a rebuilt plan
    /// sequence — routing is a pure function of the retained query rows,
    /// so the rebuilt cache re-adopts exactly the grouping it was evicted
    /// with. The caller granted the pages (both modes need the same page
    /// count for the same retained tokens), so failure here is a
    /// scheduler bug.
    fn resume(
        self,
        pool: &mut PagePool<T>,
        arena: &mut SwapArena<T>,
        spec: Option<RoutedSpec>,
    ) -> InFlight<T> {
        let tokens = self.retained_tokens();
        let payload = match self.payload {
            ParkedPayload::Attn {
                plan,
                pattern,
                q,
                k,
                v,
                kv,
            } => {
                let seq = match kv {
                    ParkedKv::Dropped => {
                        let seq = pool.allocate(q.cols(), v.cols());
                        let ok = pool.try_extend(
                            seq,
                            &k.rows_slice(0, tokens),
                            &v.rows_slice(0, tokens),
                        );
                        assert!(ok, "resume was granted its pages");
                        if let Some(spec) = spec {
                            pool.extend_routing(seq, spec, 0, &q.rows_slice(0, tokens))
                                .expect("a fresh cache adopts its plan's routing spec");
                        }
                        seq
                    }
                    ParkedKv::Swapped(ticket) => {
                        let mut stack = arena.take(ticket);
                        assert_eq!(stack.len(), 1, "a plan sequence parks one cache");
                        let Ok(seq) = pool.try_adopt(stack.pop().expect("one cache")) else {
                            panic!("resume was granted its pages");
                        };
                        seq
                    }
                    ParkedKv::Inline(_) => unreachable!("plan sequences never park inline"),
                };
                Payload::Attn {
                    plan,
                    pattern,
                    seq,
                    q,
                    k,
                    v,
                }
            }
            ParkedPayload::Model { model, x, kv } => {
                let caches = match kv {
                    ParkedKv::Swapped(ticket) => arena.take(ticket),
                    ParkedKv::Inline(caches) => caches,
                    ParkedKv::Dropped => unreachable!("model caches are never dropped"),
                };
                let Ok(state) = ModelKvState::adopt(caches, pool) else {
                    panic!("resume was granted its pages");
                };
                Payload::Model { model, x, state }
            }
        };
        InFlight {
            id: self.id,
            priority: self.priority,
            prompt: self.prompt,
            phase: self.phase,
            out: self.out,
            submitted: self.submitted,
            admitted: self.admitted,
            preemptions: self.preemptions,
            reserved_pages: 0,
            payload,
        }
    }
}

/// This tick's unit of work for one sequence.
enum Work {
    /// Prefill query rows `start .. start + rows` against the prompt KV.
    Prefill { start: usize, rows: usize },
    /// Decode token `t` (appends its K/V row, computes one decode row).
    Decode { t: usize },
}

/// The continuous-batching serving scheduler — see the [module
/// docs](self) for the policy and [`crate`] for an end-to-end example.
///
/// `'p` is the lifetime of mask data borrowed by the registered plans and
/// models (implicit-kernel plans borrow nothing and work with `'static`).
pub struct Scheduler<'p, T> {
    engine: AttentionEngine,
    config: ServeConfig,
    plans: Vec<AttentionPlan<'p>>,
    models: Vec<DecoderModel<'p, T>>,
    pending: BTreeMap<u8, VecDeque<Pending<T>>>,
    pending_len: usize,
    /// Resume queues: preempted sequences per priority class, kept in
    /// request-id order (= original admission order within the class).
    parked: BTreeMap<u8, VecDeque<Parked<T>>>,
    parked_len: usize,
    in_flight: Vec<InFlight<T>>,
    pool: PagePool<T>,
    /// Host-side parking lot for evicted caches under
    /// [`EvictionMode::Swap`] (empty forever under `Recompute`).
    arena: SwapArena<T>,
    /// Reservation ledger, in pages ([`AdmissionMode::WorstCaseReserve`]
    /// only; stays 0 under paged admission).
    reserved_pages: usize,
    preemption_events: u64,
    /// Parks that wanted the arena but fell back to recompute/inline
    /// because the stack would not fit [`ServeConfig::swap_bytes`].
    swap_fallbacks: u64,
    now: u64,
    next_id: u64,
}

impl<'p, T: Real> Scheduler<'p, T> {
    /// Build a scheduler owning `engine` under the given admission policy.
    pub fn new(engine: AttentionEngine, config: ServeConfig) -> Result<Self, ServeError> {
        if config.max_in_flight == 0 {
            return Err(ServeError::BadConfig {
                what: "max_in_flight must be positive",
            });
        }
        if config.prefill_chunk == 0 {
            return Err(ServeError::BadConfig {
                what: "prefill_chunk must be positive",
            });
        }
        if config.kv_pages == 0 {
            return Err(ServeError::BadConfig {
                what: "kv_pages must be positive",
            });
        }
        if config.page_size == 0 {
            return Err(ServeError::BadConfig {
                what: "page_size must be positive",
            });
        }
        Ok(Scheduler {
            engine,
            config,
            plans: Vec::new(),
            models: Vec::new(),
            pending: BTreeMap::new(),
            pending_len: 0,
            parked: BTreeMap::new(),
            parked_len: 0,
            in_flight: Vec::new(),
            pool: PagePool::new(config.kv_pages, config.page_size),
            arena: SwapArena::new(config.swap_bytes),
            reserved_pages: 0,
            preemption_events: 0,
            swap_fallbacks: 0,
            now: 0,
            next_id: 0,
        })
    }

    /// Register a compiled plan; submitted requests name it by the
    /// returned id. Dense-baseline plans are rejected — they have no
    /// prefill-window or decode-row form.
    pub fn register_plan(&mut self, plan: AttentionPlan<'p>) -> Result<PlanId, ServeError> {
        if !plan.is_composable() {
            return Err(ServeError::BadRequest {
                what: "dense baseline plans have no serving form",
            });
        }
        self.plans.push(plan);
        Ok(PlanId(self.plans.len() - 1))
    }

    /// Register a compiled decoder model; model requests name it by the
    /// returned id. [`DecoderModel::new`] already rejected dense-baseline
    /// plans, so every registered model has a serving form.
    pub fn register_model(&mut self, model: DecoderModel<'p, T>) -> ModelId {
        self.models.push(model);
        ModelId(self.models.len() - 1)
    }

    /// A registered plan.
    ///
    /// # Panics
    /// Panics if `id` did not come from this scheduler's
    /// [`Self::register_plan`].
    pub fn plan(&self, id: PlanId) -> &AttentionPlan<'p> {
        &self.plans[id.0]
    }

    /// A registered model.
    ///
    /// # Panics
    /// Panics if `id` did not come from this scheduler's
    /// [`Self::register_model`].
    pub fn model(&self, id: ModelId) -> &DecoderModel<'p, T> {
        &self.models[id.0]
    }

    /// The engine this scheduler launches through.
    pub fn engine(&self) -> &AttentionEngine {
        &self.engine
    }

    /// The admission policy.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Current virtual time (ticks executed so far).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Requests queued but not yet admitted.
    pub fn pending_len(&self) -> usize {
        self.pending_len
    }

    /// Preempted sequences waiting on resume queues.
    pub fn parked_len(&self) -> usize {
        self.parked_len
    }

    /// Sequences currently holding KV pages.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Pending + parked + in-flight sequences.
    pub fn outstanding(&self) -> usize {
        self.pending_len + self.parked_len + self.in_flight.len()
    }

    /// True when nothing is pending, parked, or in flight.
    pub fn is_idle(&self) -> bool {
        self.outstanding() == 0
    }

    /// Total pages in the KV pool.
    pub fn kv_total_pages(&self) -> usize {
        self.pool.total_pages()
    }

    /// Pages on the free list right now.
    pub fn kv_free_pages(&self) -> usize {
        self.pool.free_pages()
    }

    /// Pages mapped into live page tables right now.
    pub fn kv_used_pages(&self) -> usize {
        self.pool.used_pages()
    }

    /// Cached tokens per page.
    pub fn kv_page_size(&self) -> usize {
        self.pool.page_size()
    }

    /// KV tokens actually cached right now.
    pub fn kv_used_tokens(&self) -> usize {
        self.pool.used_tokens()
    }

    /// Pages held in the worst-case reservation ledger
    /// ([`AdmissionMode::WorstCaseReserve`]; always 0 under paged
    /// admission).
    pub fn kv_reserved_pages(&self) -> usize {
        self.reserved_pages
    }

    /// Total sequence preemptions so far (each park of each sequence
    /// counts once).
    pub fn preemption_events(&self) -> u64 {
        self.preemption_events
    }

    /// Bytes of K/V payload currently parked in the swap arena (always 0
    /// under [`EvictionMode::Recompute`], and whenever nothing is
    /// preempted).
    pub fn swap_parked_bytes(&self) -> usize {
        self.arena.parked_bytes()
    }

    /// High-water mark of [`Self::swap_parked_bytes`] over the
    /// scheduler's life — the arena memory a deployment actually needs.
    pub fn swap_peak_bytes(&self) -> usize {
        self.arena.peak_bytes()
    }

    /// Parks that wanted the arena but fell back to recompute/inline
    /// because the victim's stack would not fit
    /// [`ServeConfig::swap_bytes`]. Always 0 under
    /// [`EvictionMode::Recompute`].
    pub fn swap_fallbacks(&self) -> u64 {
        self.swap_fallbacks
    }

    /// Assert the paged-KV invariants: page conservation
    /// (`free + mapped == total`), no page double-mapped, every page
    /// table exactly covering its cache, swap-arena conservation (every
    /// parked byte owned by exactly one parked sequence's live ticket,
    /// the ledger matching the caches, nothing parked while idle), and —
    /// under worst-case reservation — the ledger in sync and every
    /// sequence (all layers counted) within its reservation. The serving
    /// simulation calls this after every tick.
    ///
    /// # Panics
    /// Panics when an invariant is violated.
    pub fn assert_kv_invariants(&self) {
        self.pool.assert_page_invariants();
        self.arena.assert_swap_invariants();
        let mut swapped = 0usize;
        let mut swapped_bytes = 0usize;
        for p in self.parked.values().flatten() {
            if let Some(ticket) = p.swap_ticket() {
                swapped += 1;
                swapped_bytes += self.arena.bytes_of(ticket);
            }
        }
        assert_eq!(
            swapped,
            self.arena.len(),
            "arena stacks not owned 1:1 by parked sequences"
        );
        assert_eq!(
            swapped_bytes,
            self.arena.parked_bytes(),
            "parked tickets do not account every arena byte"
        );
        let ledger: usize = self.in_flight.iter().map(|s| s.reserved_pages).sum();
        assert_eq!(
            ledger, self.reserved_pages,
            "reservation ledger out of sync"
        );
        assert!(
            self.reserved_pages <= self.pool.total_pages(),
            "reserved {} pages exceed the pool's {}",
            self.reserved_pages,
            self.pool.total_pages()
        );
        for s in &self.in_flight {
            if s.reserved_pages > 0 {
                let held = match &s.payload {
                    Payload::Attn { seq, .. } => self.pool.pages_held(*seq),
                    Payload::Model { state, .. } => state.pages_held(&self.pool),
                };
                assert!(
                    held <= s.reserved_pages,
                    "sequence holds more pages than it reserved"
                );
            }
        }
    }

    /// Queue a plan request. Validation is immediate (shape checks, plan
    /// lookup, and the can-it-ever-fit capacity check); admission happens
    /// on a later [`Self::tick`]. No KV cache exists — and nothing is
    /// mutated — for a rejected request.
    pub fn submit(&mut self, request: ServeRequest<T>) -> Result<RequestId, ServeError> {
        match request.pattern {
            PatternChoice::Explicit(id) => {
                if self.plans.get(id.0).is_none() {
                    return Err(ServeError::UnknownPlan);
                }
            }
            PatternChoice::Auto => {
                if self.plans.is_empty() {
                    return Err(ServeError::UnknownPlan);
                }
            }
        }
        let total = request.q.rows();
        if total == 0 {
            return Err(ServeError::BadRequest {
                what: "a request needs at least one token",
            });
        }
        if request.k.rows() != total || request.v.rows() != total {
            return Err(ServeError::BadRequest {
                what: "Q/K/V row counts differ",
            });
        }
        if request.q.cols() != request.k.cols() {
            return Err(ServeError::BadRequest {
                what: "Q and K disagree on the key dimension",
            });
        }
        if request.q.cols() == 0 || request.v.cols() == 0 {
            return Err(ServeError::BadRequest {
                what: "key/value dimensions must be positive",
            });
        }
        if request.prompt == 0 || request.prompt > total {
            return Err(ServeError::BadRequest {
                what: "prompt must cover between 1 and all of the rows",
            });
        }
        let need_pages = self.pool.pages_for(total);
        if need_pages > self.pool.total_pages() {
            return Err(ServeError::OverCapacity {
                need_pages,
                total_pages: self.pool.total_pages(),
            });
        }
        let priority = request.priority;
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.pending
            .entry(priority)
            .or_default()
            .push_back(Pending {
                id,
                submitted: self.now,
                request: AnyRequest::Attn(request),
            });
        self.pending_len += 1;
        Ok(id)
    }

    /// Queue a decoder-model request. Validation is immediate; admission
    /// happens on a later [`Self::tick`]. The capacity check counts every
    /// layer: a sequence of `total` tokens through an `L`-layer model
    /// needs `L × pages_for(total)` pages resident at completion.
    pub fn submit_model(&mut self, request: ModelRequest<T>) -> Result<RequestId, ServeError> {
        let Some(model) = self.models.get(request.model.0) else {
            return Err(ServeError::UnknownModel);
        };
        let total = request.x.rows();
        if total == 0 {
            return Err(ServeError::BadRequest {
                what: "a request needs at least one token",
            });
        }
        if request.x.cols() != model.d_model() {
            return Err(ServeError::BadRequest {
                what: "input width must match the model's d_model",
            });
        }
        if request.prompt == 0 || request.prompt > total {
            return Err(ServeError::BadRequest {
                what: "prompt must cover between 1 and all of the rows",
            });
        }
        let need_pages = model.layers() * self.pool.pages_for(total);
        if need_pages > self.pool.total_pages() {
            return Err(ServeError::OverCapacity {
                need_pages,
                total_pages: self.pool.total_pages(),
            });
        }
        let priority = request.priority;
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.pending
            .entry(priority)
            .or_default()
            .push_back(Pending {
                id,
                submitted: self.now,
                request: AnyRequest::Model(request),
            });
        self.pending_len += 1;
        Ok(id)
    }

    /// Drop a request — pending, parked, or in flight (releasing its KV
    /// pages, every layer's for a model sequence). Returns false when the
    /// id is unknown or already completed.
    pub fn cancel(&mut self, id: RequestId) -> bool {
        for queue in self.pending.values_mut() {
            if let Some(pos) = queue.iter().position(|p| p.id == id) {
                queue.remove(pos);
                self.pending_len -= 1;
                return true;
            }
        }
        for queue in self.parked.values_mut() {
            if let Some(pos) = queue.iter().position(|p| p.id == id) {
                let p = queue.remove(pos).expect("position exists");
                // A swapped victim's bytes live in the arena, not the
                // pool: reclaim them with the ticket.
                if let Some(ticket) = p.swap_ticket() {
                    let _ = self.arena.take(ticket);
                }
                self.parked_len -= 1;
                return true;
            }
        }
        if let Some(pos) = self.in_flight.iter().position(|s| s.id == id) {
            let s = self.in_flight.remove(pos);
            self.reserved_pages -= s.reserved_pages;
            match s.payload {
                Payload::Attn { seq, .. } => {
                    self.pool.release(seq);
                }
                Payload::Model { state, .. } => {
                    state.release(&mut self.pool);
                }
            }
            return true;
        }
        false
    }

    /// Resolve a request's pattern choice to a concrete plan index — the
    /// admission-time cost model behind [`PatternChoice::Auto`]. The
    /// registered plans are ranked cheapest-first by
    /// [`AttentionPlan::estimated_edges`] at the request's prompt length,
    /// and the pool's free-page fraction indexes the ranking: an empty
    /// pool picks the cheapest pattern, a wide-open one the densest. Both
    /// inputs are deterministic scheduler state, so a replayed trace
    /// resolves identically every run.
    fn resolve_pattern(
        plans: &[AttentionPlan<'_>],
        pool: &PagePool<T>,
        pattern: PatternChoice,
        prompt: usize,
    ) -> usize {
        match pattern {
            PatternChoice::Explicit(id) => id.0,
            PatternChoice::Auto => {
                let mut ranked: Vec<usize> = (0..plans.len()).collect();
                ranked.sort_by_key(|&p| (plans[p].estimated_edges(prompt), p));
                let frac = pool.free_pages() as f64 / pool.total_pages() as f64;
                let pick = ((frac * ranked.len() as f64) as usize).min(ranked.len() - 1);
                ranked[pick]
            }
        }
    }

    /// Pages this sequence's work will take from the pool this tick. A
    /// plan sequence appends one K/V row per decode step — one page when
    /// the append crosses a page boundary, zero mid-page, zero in prefill
    /// (its prompt pages were taken at admission). A model sequence
    /// appends its window's rows to **every** layer's cache, chunk by
    /// chunk, so both phases can take pages and every count is × layers.
    fn append_need(&self, s: &InFlight<T>) -> usize {
        match (&s.payload, s.phase) {
            (Payload::Attn { .. }, Phase::Prefill { .. }) => 0,
            (Payload::Attn { .. }, Phase::Decode { done }) => {
                usize::from((s.prompt + done) % self.config.page_size == 0)
            }
            (Payload::Model { model, .. }, Phase::Prefill { done }) => {
                let rows = self.config.prefill_chunk.min(s.prompt - done);
                self.models[*model].layers()
                    * (self.pool.pages_for(done + rows) - self.pool.pages_for(done))
            }
            (Payload::Model { model, .. }, Phase::Decode { done }) => {
                self.models[*model].layers()
                    * usize::from((s.prompt + done) % self.config.page_size == 0)
            }
        }
    }

    /// Pages a parked sequence needs to resume *and run this very tick*:
    /// the pages of its retained tokens, plus what its first unit of work
    /// appends in the same tick (a decode row landing on a page boundary;
    /// a model sequence's next prefill chunk) — all × layers for models.
    fn resume_need(&self, p: &Parked<T>) -> usize {
        let tokens = p.retained_tokens();
        let layers = match &p.payload {
            ParkedPayload::Attn { .. } => 1,
            ParkedPayload::Model { model, .. } => self.models[*model].layers(),
        };
        let append = match p.phase {
            Phase::Prefill { done } => match &p.payload {
                // A plan sequence's prompt is fully cached mid-prefill;
                // a model sequence resumes by appending its next chunk.
                ParkedPayload::Attn { .. } => 0,
                ParkedPayload::Model { .. } => {
                    let rows = self.config.prefill_chunk.min(p.prompt - done);
                    self.pool.pages_for(done + rows) - self.pool.pages_for(done)
                }
            },
            Phase::Decode { .. } if tokens % self.config.page_size == 0 => 1,
            Phase::Decode { .. } => 0,
        };
        layers * (self.pool.pages_for(tokens) + append)
    }

    /// Admit eligible sequences in (priority class, resumed-then-pending,
    /// FIFO) order until one does not fit. Fresh plan admission appends
    /// the prompt's K/V rows to the sequence's cache; fresh model
    /// admission allocates empty per-layer caches (the first prefill
    /// chunk appends during this very tick's work, so its pages are
    /// charged against headroom here). Resume re-extends a plan
    /// sequence's retained rows — bit-identical, because K/V rows are
    /// deterministic inputs — and re-adopts a model sequence's retained
    /// caches whole.
    ///
    /// `append_needs` is the page count this tick's already-running
    /// appends will consume; paged admission keeps that many pages off
    /// the table so admission can never force a preemption in the same
    /// tick.
    fn admit(&mut self, now: u64, append_needs: usize) -> (Vec<RequestId>, Vec<RequestId>) {
        let mut fresh = Vec::new();
        let mut resumed = Vec::new();
        let mut headroom = match self.config.admission {
            AdmissionMode::PagedUsage => self.pool.free_pages().saturating_sub(append_needs),
            AdmissionMode::WorstCaseReserve => self.pool.total_pages() - self.reserved_pages,
        };
        let classes: Vec<u8> = {
            let mut c: Vec<u8> = self
                .parked
                .keys()
                .chain(self.pending.keys())
                .copied()
                .collect();
            c.sort_unstable();
            c.dedup();
            c
        };
        'classes: for class in classes {
            // Resume queue first: parked sequences were admitted from the
            // head of this class's queue once, so their ids precede every
            // id still pending — resumed-first IS global FIFO order.
            while let Some(front) = self.parked.get(&class).and_then(|q| q.front()) {
                if self.in_flight.len() >= self.config.max_in_flight {
                    break 'classes;
                }
                let need = self.resume_need(front);
                if need > headroom {
                    // A parked head that cannot resume blocks all lower
                    // admission: no overtaking a preempted sequence.
                    break 'classes;
                }
                headroom -= need;
                let p = self
                    .parked
                    .get_mut(&class)
                    .expect("front exists")
                    .pop_front()
                    .expect("front exists");
                self.parked_len -= 1;
                resumed.push(p.id);
                let spec = match &p.payload {
                    ParkedPayload::Attn { plan, .. } => self.plans[*plan].routing_spec(),
                    ParkedPayload::Model { .. } => None,
                };
                let s = p.resume(&mut self.pool, &mut self.arena, spec);
                self.in_flight.push(s);
            }
            let Some(queue) = self.pending.get_mut(&class) else {
                continue;
            };
            while let Some(front) = queue.front() {
                if now < front.submitted + self.config.arrival_window {
                    // Class head still batching arrivals; it does not
                    // block other classes (FIFO within the class holds —
                    // later same-class requests are younger still).
                    break;
                }
                if self.in_flight.len() >= self.config.max_in_flight {
                    break 'classes;
                }
                let need = match (&front.request, self.config.admission) {
                    (AnyRequest::Attn(r), AdmissionMode::PagedUsage) => {
                        self.pool.pages_for(r.prompt)
                    }
                    (AnyRequest::Attn(r), AdmissionMode::WorstCaseReserve) => {
                        self.pool.pages_for(r.q.rows())
                    }
                    (AnyRequest::Model(r), AdmissionMode::PagedUsage) => {
                        // A fresh model sequence holds no pages yet; its
                        // first prefill chunk appends this tick, so its
                        // pages are charged (not taken) here.
                        self.models[r.model.0].layers()
                            * self.pool.pages_for(r.prompt.min(self.config.prefill_chunk))
                    }
                    (AnyRequest::Model(r), AdmissionMode::WorstCaseReserve) => {
                        self.models[r.model.0].layers() * self.pool.pages_for(r.x.rows())
                    }
                };
                if need > headroom {
                    // An eligible head that cannot be placed blocks all
                    // lower-priority admission: no overtaking, so every
                    // placeable request is eventually admitted.
                    break 'classes;
                }
                headroom -= need;
                let p = queue.pop_front().expect("front exists");
                self.pending_len -= 1;
                let reserved_pages = match self.config.admission {
                    AdmissionMode::PagedUsage => 0,
                    AdmissionMode::WorstCaseReserve => need,
                };
                self.reserved_pages += reserved_pages;
                let (priority, prompt, total, out_cols, payload) = match p.request {
                    AnyRequest::Attn(r) => {
                        let total = r.q.rows();
                        let plan =
                            Self::resolve_pattern(&self.plans, &self.pool, r.pattern, r.prompt);
                        let spec = self.plans[plan].routing_spec();
                        let seq = self.pool.allocate(r.q.cols(), r.v.cols());
                        let ok = self.pool.try_extend(
                            seq,
                            &r.k.rows_slice(0, r.prompt),
                            &r.v.rows_slice(0, r.prompt),
                        );
                        assert!(ok, "admission was granted its prompt pages");
                        if let Some(spec) = spec {
                            self.pool
                                .extend_routing(seq, spec, 0, &r.q.rows_slice(0, r.prompt))
                                .expect("a fresh cache adopts its plan's routing spec");
                        }
                        let cols = r.v.cols();
                        let payload = Payload::Attn {
                            plan,
                            pattern: r.pattern,
                            seq,
                            q: r.q,
                            k: r.k,
                            v: r.v,
                        };
                        (r.priority, r.prompt, total, cols, payload)
                    }
                    AnyRequest::Model(r) => {
                        let model = &self.models[r.model.0];
                        let state = ModelKvState::allocate(model, &mut self.pool);
                        let total = r.x.rows();
                        let cols = model.d_model();
                        let payload = Payload::Model {
                            model: r.model.0,
                            x: r.x,
                            state,
                        };
                        (r.priority, r.prompt, total, cols, payload)
                    }
                };
                self.in_flight.push(InFlight {
                    id: p.id,
                    priority,
                    prompt,
                    phase: Phase::Prefill { done: 0 },
                    out: Matrix::zeros(total, out_cols),
                    submitted: p.submitted,
                    admitted: now,
                    preemptions: 0,
                    reserved_pages,
                    payload,
                });
                fresh.push(p.id);
            }
        }
        (fresh, resumed)
    }

    /// Advance the virtual clock by one tick: admit (resuming preempted
    /// sequences first), preempt if this tick's appends outstrip the free
    /// pages, gather every in-flight sequence's next unit of work, launch
    /// it all batched (one `run_batch` per distinct plan, plus one per
    /// layer per distinct model), apply outputs, and retire finished
    /// sequences.
    ///
    /// On a launch failure the tick is rolled back atomically — appends
    /// truncated (pages returned), victims rebuilt in place, admissions
    /// un-admitted, no cursor or clock movement — and the returned error
    /// names the offending request when identifiable; see the [module
    /// docs](self).
    pub fn tick(&mut self) -> Result<TickReport<T>, ServeError> {
        let now = self.now;

        // Pages this tick's appends will consume, counted before
        // admission so newcomers cannot take them. Because of this guard,
        // a tick admits or preempts, never both — which is what lets the
        // rollback below restore victims at their exact positions.
        let pre_needs: usize = self.in_flight.iter().map(|s| self.append_need(s)).sum();
        let (admitted, resumed) = self.admit(now, pre_needs);

        // Preemption resolution: when the appends still outstrip the free
        // pages (growth of previously admitted sequences, not admission),
        // grant appends from most urgent to least, evicting from the
        // opposite end.
        let needs: Vec<usize> = self.in_flight.iter().map(|s| self.append_need(s)).collect();
        let mut staged: Vec<(usize, Parked<T>)> = Vec::new();
        let mut preempted: Vec<RequestId> = Vec::new();
        if needs.iter().sum::<usize>() > self.pool.free_pages() {
            debug_assert!(
                admitted.is_empty() && resumed.is_empty(),
                "the admission guard makes admit-and-preempt ticks impossible"
            );
            // Urgency = admission order under strict priority: class
            // ascending, in-flight position (admission recency) ascending.
            let mut urgency: Vec<usize> = (0..self.in_flight.len()).collect();
            urgency.sort_by_key(|&i| (self.in_flight[i].priority, i));
            let mut available = self.pool.free_pages();
            let mut victim = vec![false; self.in_flight.len()];
            let mut hi = urgency.len();
            for p in 0..urgency.len() {
                if p >= hi {
                    break; // everyone from here on is already a victim
                }
                let i = urgency[p];
                let need = needs[i];
                while need > available && hi > p + 1 {
                    hi -= 1;
                    let v = urgency[hi];
                    victim[v] = true;
                    available += match &self.in_flight[v].payload {
                        Payload::Attn { seq, .. } => self.pool.pages_held(*seq),
                        Payload::Model { state, .. } => state.pages_held(&self.pool),
                    };
                }
                if need <= available {
                    available -= need;
                } else {
                    // Even with every less-urgent sequence evicted the
                    // append does not fit: this sequence parks too. The
                    // most urgent sequence can never land here — its
                    // held + need never exceeds `layers × pages_for(total)`,
                    // which fits the pool by the submission check — so at
                    // least one sequence always advances: no livelock.
                    victim[i] = true;
                    hi = p;
                }
            }
            for i in (0..self.in_flight.len()).rev() {
                if victim[i] {
                    let s = self.in_flight.remove(i);
                    staged.push((
                        i,
                        s.park(&mut self.pool, &mut self.arena, self.config.eviction),
                    ));
                }
            }
            staged.reverse(); // ascending original index, for restore
            preempted = staged.iter().map(|(_, p)| p.id).collect();
        }

        // Pre-append cache lengths of every surviving sequence — the
        // rollback point if any launch below fails.
        let priors: Vec<usize> = self
            .in_flight
            .iter()
            .map(|s| match &s.payload {
                Payload::Attn { seq, .. } => self.pool.cache(*seq).len(),
                Payload::Model { state, .. } => state.tokens(&self.pool),
            })
            .collect();

        // One unit of work per in-flight sequence; plan-sequence decode
        // work appends its token's K/V row now (rolled back on failure),
        // while model sequences append inside the layer advance below.
        // Every append was granted its page above, so allocation cannot
        // fail.
        let work: Vec<(usize, Work)> = self
            .in_flight
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let w = match s.phase {
                    Phase::Prefill { done } => Work::Prefill {
                        start: done,
                        rows: self.config.prefill_chunk.min(s.prompt - done),
                    },
                    Phase::Decode { done } => Work::Decode { t: s.prompt + done },
                };
                (i, w)
            })
            .collect();
        for (i, w) in &work {
            if let Work::Decode { t } = w {
                if let Payload::Attn {
                    plan, seq, q, k, v, ..
                } = &self.in_flight[*i].payload
                {
                    let ok = self.pool.try_append(*seq, k.row(*t), v.row(*t));
                    assert!(ok, "decode appends were granted pages at tick start");
                    // A routed plan's cache carries its routing: the new
                    // token joins its group now, so the decode row below
                    // sees a routing that covers its query position.
                    if let Some(spec) = self.plans[*plan].routing_spec() {
                        self.pool
                            .extend_routing(*seq, spec, 0, &q.rows_slice(*t, *t + 1))
                            .expect("cache routing follows its plan's spec");
                    }
                }
            }
        }

        // Group plan sequences by plan and model sequences by model
        // (BTreeMaps: deterministic launch order, plans before models).
        let mut plan_groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut model_groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (wi, (i, _)) in work.iter().enumerate() {
            match &self.in_flight[*i].payload {
                Payload::Attn { plan, .. } => plan_groups.entry(*plan).or_default().push(wi),
                Payload::Model { model, .. } => model_groups.entry(*model).or_default().push(wi),
            }
        }
        let windows: Vec<Matrix<T>> = work
            .iter()
            .map(|(i, w)| {
                let src = match &self.in_flight[*i].payload {
                    Payload::Attn { q, .. } => q,
                    Payload::Model { x, .. } => x,
                };
                match *w {
                    Work::Prefill { start, rows } => src.rows_slice(start, start + rows),
                    Work::Decode { t } => src.rows_slice(t, t + 1),
                }
            })
            .collect();
        let mut outputs: Vec<Option<Matrix<T>>> = (0..work.len()).map(|_| None).collect();
        let mut rows_computed = 0usize;
        let mut launches = 0usize;
        let mut failure: Option<(Option<RequestId>, AttnError)> = None;
        for (plan_idx, items) in &plan_groups {
            let requests: Vec<AttentionRequest<'_, T>> = items
                .iter()
                .map(|&wi| {
                    let (i, w) = &work[wi];
                    let Payload::Attn { seq, .. } = &self.in_flight[*i].payload else {
                        unreachable!("plan groups hold plan sequences");
                    };
                    let cache = self.pool.cache(*seq);
                    // Static plans ignore an attached routing; routed
                    // plans require the one their cache carries.
                    match *w {
                        Work::Prefill { start, .. } => {
                            AttentionRequest::windowed(&windows[wi], cache.k(0), cache.v(0), start)
                                .with_routing(cache.routing(0))
                        }
                        Work::Decode { .. } => {
                            AttentionRequest::decode(&windows[wi], cache.k(0), cache.v(0))
                                .with_routing(cache.routing(0))
                        }
                    }
                })
                .collect();
            match self.engine.run_batch(&self.plans[*plan_idx], &requests) {
                Ok(outs) => {
                    launches += 1;
                    rows_computed += outs.iter().map(Matrix::rows).sum::<usize>();
                    for (&wi, out) in items.iter().zip(outs) {
                        outputs[wi] = Some(out);
                    }
                }
                Err(e) => {
                    // The engine reports one error per batch; re-check
                    // the failed group's geometries against the plan's
                    // compiled constraints to name the offender, so
                    // callers can cancel it and recover.
                    let offender = items.iter().find_map(|&wi| {
                        let (i, w) = &work[wi];
                        let s = &self.in_flight[*i];
                        let plan = &self.plans[*plan_idx];
                        let (kv_rows, q_end) = match *w {
                            Work::Prefill { start, rows } => (s.prompt, start + rows),
                            Work::Decode { t } => (t + 1, t + 1),
                        };
                        let pinned_wrong = plan.kv_pin().is_some_and(|pin| kv_rows != pin);
                        let out_of_bound = plan.q_bound().is_some_and(|bound| q_end > bound);
                        (pinned_wrong || out_of_bound).then_some(s.id)
                    });
                    failure = Some((offender, e));
                    break;
                }
            }
        }
        if failure.is_none() {
            for (model_idx, wis) in &model_groups {
                let items: Vec<ModelWorkItem<'_, T>> = wis
                    .iter()
                    .map(|&wi| {
                        let (i, _) = &work[wi];
                        let Payload::Model { state, .. } = &self.in_flight[*i].payload else {
                            unreachable!("model groups hold model sequences");
                        };
                        ModelWorkItem {
                            x: &windows[wi],
                            state,
                        }
                    })
                    .collect();
                match self.models[*model_idx].advance_batched(&self.engine, &mut self.pool, &items)
                {
                    Ok(adv) => {
                        launches += adv.launches;
                        rows_computed += adv.rows;
                        for (&wi, out) in wis.iter().zip(adv.outputs) {
                            outputs[wi] = Some(out);
                        }
                    }
                    Err(err) => {
                        // The layer advance already rolled its own
                        // appends back. Page grants and item validation
                        // happened above, so only a kernel-geometry
                        // failure can reach here.
                        let e = match err {
                            ModelError::Attn(e) => e,
                            other => {
                                panic!("model advance was granted pages and validated: {other}")
                            }
                        };
                        let offender = wis.iter().find_map(|&wi| {
                            let (i, w) = &work[wi];
                            let s = &self.in_flight[*i];
                            let m = &self.models[*model_idx];
                            // A model's caches hold exactly the advanced
                            // window's end, in every layer.
                            let (kv_rows, q_end) = match *w {
                                Work::Prefill { start, rows } => (start + rows, start + rows),
                                Work::Decode { t } => (t + 1, t + 1),
                            };
                            let bad = (0..m.layers()).any(|l| {
                                let plan = m.plan_of(l);
                                plan.kv_pin().is_some_and(|pin| kv_rows != pin)
                                    || plan.q_bound().is_some_and(|bound| q_end > bound)
                            });
                            bad.then_some(s.id)
                        });
                        failure = Some((offender, e));
                        break;
                    }
                }
            }
        }
        if let Some((offender, e)) = failure {
            // Atomic rollback, part 1: every surviving sequence's cache
            // (every layer's, for models) back to its pre-append length,
            // returning this tick's granted pages; no cursor or clock
            // movement.
            for (s, &prior) in self.in_flight.iter().zip(&priors) {
                match &s.payload {
                    Payload::Attn { seq, .. } => self.pool.truncate(*seq, prior),
                    Payload::Model { state, .. } => state.truncate(&mut self.pool, prior),
                }
            }
            // Part 2a: un-preempt this tick's victims — rebuild each one
            // at its exact former position. Page conservation covers the
            // restores: the survivors' truncation returned every page the
            // grants took, and those grants were funded by the victims'
            // own releases.
            for (index, p) in staged {
                let spec = match &p.payload {
                    ParkedPayload::Attn { plan, .. } => self.plans[*plan].routing_spec(),
                    ParkedPayload::Model { .. } => None,
                };
                let s = p.resume(&mut self.pool, &mut self.arena, spec);
                self.in_flight.insert(index, s);
            }
            // Part 2b: un-admit this tick's admissions — release their
            // pages and push them back to their queue fronts (popping
            // from the in-flight tail and pushing front restores FIFO
            // order; resumed sequences go back to their resume queue in
            // id order), so a failed tick leaves NO trace.
            for _ in 0..admitted.len() + resumed.len() {
                let s = self.in_flight.pop().expect("admissions sit at the tail");
                self.reserved_pages -= s.reserved_pages;
                if s.preemptions > 0 {
                    // Re-park with the configured mode: under Swap, the
                    // resume above just freed exactly these arena bytes,
                    // so the stack re-parks (or falls back) exactly as it
                    // was parked before this failed tick.
                    let p = s.park(&mut self.pool, &mut self.arena, self.config.eviction);
                    let queue = self.parked.entry(p.priority).or_default();
                    let at = queue.partition_point(|x| x.id < p.id);
                    queue.insert(at, p);
                    self.parked_len += 1;
                } else {
                    let (id, submitted, priority, prompt) =
                        (s.id, s.submitted, s.priority, s.prompt);
                    let request = match s.payload {
                        Payload::Attn {
                            pattern,
                            seq,
                            q,
                            k,
                            v,
                            ..
                        } => {
                            self.pool.release(seq);
                            // Back to the queue with its original choice:
                            // an Auto request re-resolves at its real
                            // admission, under that tick's page pressure.
                            AnyRequest::Attn(ServeRequest {
                                pattern,
                                priority,
                                prompt,
                                q,
                                k,
                                v,
                            })
                        }
                        Payload::Model { model, x, state } => {
                            state.release(&mut self.pool);
                            AnyRequest::Model(ModelRequest {
                                model: ModelId(model),
                                priority,
                                prompt,
                                x,
                            })
                        }
                    };
                    self.pending
                        .entry(priority)
                        .or_default()
                        .push_front(Pending {
                            id,
                            submitted,
                            request,
                        });
                    self.pending_len += 1;
                }
            }
            return Err(ServeError::Launch {
                request: offender,
                source: e,
            });
        }

        // Apply outputs and advance each sequence's cursor.
        for ((i, w), out) in work.iter().zip(outputs) {
            let out = out.expect("all launches succeeded");
            let s = &mut self.in_flight[*i];
            match *w {
                Work::Prefill { start, rows } => {
                    for r in 0..rows {
                        s.out.row_mut(start + r).copy_from_slice(out.row(r));
                    }
                    let done = start + rows;
                    s.phase = if done == s.prompt {
                        Phase::Decode { done: 0 }
                    } else {
                        Phase::Prefill { done }
                    };
                }
                Work::Decode { t } => {
                    s.out.row_mut(t).copy_from_slice(out.row(0));
                    s.phase = Phase::Decode {
                        done: t + 1 - s.prompt,
                    };
                }
            }
        }

        // Retire completed sequences (in in-flight — i.e. admission —
        // order), releasing their KV pages.
        let mut completed = Vec::new();
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].is_complete() {
                let s = self.in_flight.remove(i);
                self.reserved_pages -= s.reserved_pages;
                let target = s.target();
                match s.payload {
                    Payload::Attn { seq, .. } => {
                        self.pool.release(seq);
                    }
                    Payload::Model { state, .. } => {
                        state.release(&mut self.pool);
                    }
                }
                completed.push(Completion {
                    id: s.id,
                    priority: s.priority,
                    target,
                    output: s.out,
                    submitted: s.submitted,
                    admitted: s.admitted,
                    completed: now,
                    preemptions: s.preemptions,
                });
            } else {
                i += 1;
            }
        }

        // Commit this tick's preemptions: victims move to their resume
        // queues (id order = original admission order within the class).
        for (_, mut p) in staged {
            p.preemptions += 1;
            self.preemption_events += 1;
            if self.config.eviction == EvictionMode::Swap && !p.is_swapped() {
                self.swap_fallbacks += 1;
            }
            let queue = self.parked.entry(p.priority).or_default();
            let at = queue.partition_point(|x| x.id < p.id);
            queue.insert(at, p);
            self.parked_len += 1;
        }

        self.now += 1;
        Ok(TickReport {
            tick: now,
            admitted,
            resumed,
            preempted,
            launches,
            rows_computed,
            completed,
        })
    }
}

impl<T: Real> std::fmt::Debug for Scheduler<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("plans", &self.plans.len())
            .field("models", &self.models.len())
            .field("pending", &self.pending_len)
            .field("parked", &self.parked_len)
            .field("in_flight", &self.in_flight.len())
            .field("free_pages", &self.pool.free_pages())
            .field("total_pages", &self.pool.total_pages())
            .field("preemptions", &self.preemption_events)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_core::AttentionKernel;
    use gpa_model::LayerPattern;
    use gpa_tensor::init::{gaussian_matrix, qkv};

    fn request(
        plan: PlanId,
        priority: u8,
        prompt: usize,
        total: usize,
        seed: u64,
    ) -> ServeRequest<f64> {
        let (q, k, v) = qkv::<f64>(total, 4, seed);
        ServeRequest {
            pattern: plan.into(),
            priority,
            prompt,
            q,
            k,
            v,
        }
    }

    fn scheduler(config: ServeConfig) -> (Scheduler<'static, f64>, PlanId) {
        let mut s = Scheduler::new(AttentionEngine::with_threads(2), config).unwrap();
        let plan = s
            .register_plan(AttentionPlan::single(AttentionKernel::Local { n: 2 }).unwrap())
            .unwrap();
        (s, plan)
    }

    /// A 3-layer Full/Sparse/Full stack over implicit (length-free)
    /// kernels, d_model 12, 3 heads of dk 4.
    fn stack() -> DecoderModel<'static, f64> {
        DecoderModel::new(
            LayerPattern::parse("FSF").unwrap(),
            vec![
                (
                    'F',
                    AttentionPlan::single(AttentionKernel::Local { n: 2 }).unwrap(),
                ),
                (
                    'S',
                    AttentionPlan::single(AttentionKernel::Dilated1d { w: 2, r: 2 }).unwrap(),
                ),
            ],
            12,
            3,
            4,
            0xBEEF,
        )
        .unwrap()
    }

    fn model_scheduler(config: ServeConfig) -> (Scheduler<'static, f64>, ModelId) {
        let mut s = Scheduler::new(AttentionEngine::with_threads(2), config).unwrap();
        let model = s.register_model(stack());
        (s, model)
    }

    fn model_request(
        model: ModelId,
        priority: u8,
        prompt: usize,
        total: usize,
        seed: u64,
    ) -> ModelRequest<f64> {
        ModelRequest {
            model,
            priority,
            prompt,
            x: gaussian_matrix(total, 12, 1.0, seed),
        }
    }

    #[test]
    fn config_validation() {
        for bad in [
            ServeConfig {
                max_in_flight: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                prefill_chunk: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                kv_pages: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                page_size: 0,
                ..ServeConfig::default()
            },
        ] {
            assert!(matches!(
                Scheduler::<f64>::new(AttentionEngine::with_threads(1), bad),
                Err(ServeError::BadConfig { .. })
            ));
        }
    }

    #[test]
    fn submit_validation_rejects_bad_requests() {
        let (mut s, plan) = scheduler(ServeConfig {
            kv_pages: 4,
            page_size: 4,
            ..ServeConfig::default()
        });
        // Unknown plan.
        let r = request(PlanId(9), 0, 2, 4, 1);
        assert_eq!(s.submit(r), Err(ServeError::UnknownPlan));
        // Prompt outside 1..=total.
        let r = request(plan, 0, 0, 4, 2);
        assert!(matches!(s.submit(r), Err(ServeError::BadRequest { .. })));
        let r = request(plan, 0, 5, 4, 3);
        assert!(matches!(s.submit(r), Err(ServeError::BadRequest { .. })));
        // Mismatched K rows.
        let mut r = request(plan, 0, 2, 4, 4);
        r.k = Matrix::zeros(3, 4);
        assert!(matches!(s.submit(r), Err(ServeError::BadRequest { .. })));
        // Over the whole pool (17 tokens = 5 pages of 4): rejected at
        // submission.
        let r = request(plan, 0, 2, 17, 5);
        assert_eq!(
            s.submit(r),
            Err(ServeError::OverCapacity {
                need_pages: 5,
                total_pages: 4
            })
        );
        assert!(s.is_idle(), "rejected requests leave no state behind");
        assert_eq!(s.kv_used_tokens(), 0);
    }

    #[test]
    fn submit_model_validation_counts_every_layer() {
        let (mut s, model) = model_scheduler(ServeConfig {
            kv_pages: 6,
            page_size: 4,
            ..ServeConfig::default()
        });
        // Unknown model.
        let r = model_request(ModelId(9), 0, 2, 4, 1);
        assert_eq!(s.submit_model(r), Err(ServeError::UnknownModel));
        // Wrong input width.
        let mut r = model_request(model, 0, 2, 4, 2);
        r.x = Matrix::zeros(4, 5);
        assert!(matches!(
            s.submit_model(r),
            Err(ServeError::BadRequest { .. })
        ));
        // Prompt outside 1..=total.
        let r = model_request(model, 0, 5, 4, 3);
        assert!(matches!(
            s.submit_model(r),
            Err(ServeError::BadRequest { .. })
        ));
        // 12 tokens = 3 pages of 4, × 3 layers = 9 > the pool's 6: the
        // capacity check must count every layer.
        let r = model_request(model, 0, 2, 12, 4);
        assert_eq!(
            s.submit_model(r),
            Err(ServeError::OverCapacity {
                need_pages: 9,
                total_pages: 6
            })
        );
        assert!(s.is_idle(), "rejected requests leave no state behind");
        assert_eq!(s.kv_used_tokens(), 0);
    }

    #[test]
    fn dense_plans_cannot_register() {
        let mut s: Scheduler<'static, f64> =
            Scheduler::new(AttentionEngine::with_threads(1), ServeConfig::default()).unwrap();
        assert!(matches!(
            s.register_plan(AttentionPlan::single(AttentionKernel::Flash).unwrap()),
            Err(ServeError::BadRequest { .. })
        ));
    }

    #[test]
    fn single_sequence_runs_to_completion() {
        let (mut s, plan) = scheduler(ServeConfig {
            max_in_flight: 4,
            kv_pages: 16,
            page_size: 4,
            arrival_window: 0,
            prefill_chunk: 3,
            admission: AdmissionMode::PagedUsage,
            eviction: EvictionMode::Recompute,
            swap_bytes: usize::MAX,
        });
        let id = s.submit(request(plan, 0, 7, 10, 11)).unwrap();
        let mut completions = Vec::new();
        for _ in 0..32 {
            completions.extend(s.tick().unwrap().completed);
            if s.is_idle() {
                break;
            }
        }
        assert!(s.is_idle());
        assert_eq!(completions.len(), 1);
        let c = &completions[0];
        assert_eq!(c.id, id);
        assert_eq!(c.target, ServeTarget::Plan(plan));
        assert_eq!(c.output.shape(), (10, 4));
        assert_eq!(c.preemptions, 0);
        // ceil(7/3) = 3 prefill ticks + 3 decode ticks, admitted at tick 0.
        assert_eq!(c.admitted, 0);
        assert_eq!(c.completed, 5);
        assert_eq!(s.kv_used_pages(), 0, "pages released on completion");
    }

    #[test]
    fn model_sequence_completes_bitwise_with_the_sequential_forward() {
        let (mut s, model) = model_scheduler(ServeConfig {
            max_in_flight: 4,
            kv_pages: 64,
            page_size: 4,
            arrival_window: 0,
            prefill_chunk: 3,
            admission: AdmissionMode::PagedUsage,
            eviction: EvictionMode::Recompute,
            swap_bytes: usize::MAX,
        });
        let r = model_request(model, 0, 7, 10, 11);
        let id = s.submit_model(r.clone()).unwrap();
        let mut completions = Vec::new();
        for _ in 0..32 {
            completions.extend(s.tick().unwrap().completed);
            s.assert_kv_invariants();
            if s.is_idle() {
                break;
            }
        }
        assert!(s.is_idle());
        assert_eq!(completions.len(), 1);
        let c = &completions[0];
        assert_eq!(c.id, id);
        assert_eq!(c.target, ServeTarget::Model(model));
        assert_eq!(c.output.shape(), (10, 12));
        // Same chunk schedule as the scheduler (ceil(7/3) chunks + 3
        // decode steps), so the serving path must reproduce the
        // unscheduled forward bitwise.
        let want =
            crate::trace::sequential_model_reference(s.engine(), s.model(model), &r, 3).unwrap();
        assert_eq!(c.output, want);
        assert_eq!(s.kv_used_pages(), 0, "all layers released on completion");
    }

    #[test]
    fn mixed_plan_and_model_work_share_one_tick() {
        let (mut s, model) = model_scheduler(ServeConfig {
            max_in_flight: 4,
            kv_pages: 64,
            page_size: 4,
            arrival_window: 0,
            prefill_chunk: 8,
            admission: AdmissionMode::PagedUsage,
            eviction: EvictionMode::Recompute,
            swap_bytes: usize::MAX,
        });
        let plan = s
            .register_plan(AttentionPlan::single(AttentionKernel::Local { n: 2 }).unwrap())
            .unwrap();
        let a = s.submit(request(plan, 0, 4, 6, 21)).unwrap();
        let b = s.submit_model(model_request(model, 0, 4, 6, 22)).unwrap();
        let r = s.tick().unwrap();
        assert_eq!(r.admitted, vec![a, b]);
        // One plan launch + one launch per layer of the 3-layer stack.
        assert_eq!(r.launches, 1 + 3);
        // 4 prefill rows for the plan sequence; the model sequence's 4
        // rows × 3 heads × 3 layers.
        assert_eq!(r.rows_computed, 4 + 4 * 3 * 3);
        let mut completions = Vec::new();
        for _ in 0..16 {
            completions.extend(s.tick().unwrap().completed);
            s.assert_kv_invariants();
            if s.is_idle() {
                break;
            }
        }
        assert_eq!(completions.len(), 2);
        assert_eq!(completions[0].target, ServeTarget::Plan(plan));
        assert_eq!(completions[1].target, ServeTarget::Model(model));
    }

    #[test]
    fn admission_respects_pages_and_in_flight_caps() {
        let (mut s, plan) = scheduler(ServeConfig {
            max_in_flight: 1,
            kv_pages: 2,
            page_size: 4,
            arrival_window: 0,
            prefill_chunk: 8,
            admission: AdmissionMode::PagedUsage,
            eviction: EvictionMode::Recompute,
            swap_bytes: usize::MAX,
        });
        // Both fit the pool alone; the cap admits them one at a time.
        s.submit(request(plan, 0, 2, 3, 21)).unwrap();
        s.submit(request(plan, 0, 2, 3, 22)).unwrap();
        let r = s.tick().unwrap();
        assert_eq!(r.admitted.len(), 1);
        assert_eq!(s.in_flight_len(), 1);
        assert_eq!(s.pending_len(), 1);
        s.assert_kv_invariants();
        for _ in 0..16 {
            if s.is_idle() {
                break;
            }
            s.tick().unwrap();
            s.assert_kv_invariants();
        }
        assert!(s.is_idle());
    }

    #[test]
    fn paged_admission_packs_by_usage_not_worst_case() {
        // 8 pages × 4 tokens. Each request: 4-token prompt (1 page) but a
        // 24-token total (6 pages). Worst-case reservation admits one at
        // a time (6 of 8 pages reserved); paged admission packs all four
        // prompts into half the pool.
        let config = ServeConfig {
            max_in_flight: 4,
            kv_pages: 8,
            page_size: 4,
            arrival_window: 0,
            prefill_chunk: 8,
            admission: AdmissionMode::PagedUsage,
            eviction: EvictionMode::Recompute,
            swap_bytes: usize::MAX,
        };
        let (mut paged, plan) = scheduler(config);
        for seed in 0..4 {
            paged.submit(request(plan, 0, 4, 24, 31 + seed)).unwrap();
        }
        let r = paged.tick().unwrap();
        assert_eq!(r.admitted.len(), 4, "paged admission packs by usage");
        assert_eq!(paged.kv_used_pages(), 4);

        let (mut reserve, plan) = scheduler(ServeConfig {
            admission: AdmissionMode::WorstCaseReserve,
            eviction: EvictionMode::Recompute,
            swap_bytes: usize::MAX,
            ..config
        });
        for seed in 0..4 {
            reserve.submit(request(plan, 0, 4, 24, 31 + seed)).unwrap();
        }
        let r = reserve.tick().unwrap();
        assert_eq!(r.admitted.len(), 1, "reservation strands the pool");
        assert_eq!(reserve.kv_reserved_pages(), 6);
        reserve.assert_kv_invariants();
    }

    #[test]
    fn preemption_parks_the_youngest_and_resumes_it_to_completion() {
        // 3 pages × 2 tokens. Two sequences of 2-prompt/4-decode: each
        // needs 3 pages at completion, both admit on 1 page each. When
        // their decode appends collide on the last free page, the
        // more-recently-admitted sequence must park and later resume.
        let (mut s, plan) = scheduler(ServeConfig {
            max_in_flight: 2,
            kv_pages: 3,
            page_size: 2,
            arrival_window: 0,
            prefill_chunk: 4,
            admission: AdmissionMode::PagedUsage,
            eviction: EvictionMode::Recompute,
            swap_bytes: usize::MAX,
        });
        let a = s.submit(request(plan, 0, 2, 6, 61)).unwrap();
        let b = s.submit(request(plan, 0, 2, 6, 62)).unwrap();
        let mut completions = Vec::new();
        let mut preempted = Vec::new();
        let mut resumed = Vec::new();
        for _ in 0..64 {
            let r = s.tick().unwrap();
            s.assert_kv_invariants();
            preempted.extend(r.preempted);
            resumed.extend(r.resumed);
            completions.extend(r.completed);
            if s.is_idle() {
                break;
            }
        }
        assert!(s.is_idle());
        assert_eq!(preempted, vec![b], "the younger sequence is the victim");
        assert_eq!(resumed, vec![b]);
        assert!(s.preemption_events() >= 1);
        assert_eq!(completions.len(), 2);
        assert_eq!(completions[0].id, a);
        assert_eq!(completions[0].preemptions, 0);
        assert_eq!(completions[1].id, b);
        assert_eq!(completions[1].preemptions, 1);
        assert_eq!(s.kv_used_pages(), 0);
    }

    #[test]
    fn model_preemption_retains_every_layer_and_resumes_bitwise() {
        // 9 pages × 2 tokens, 3-layer stack. Two sequences of 2-prompt/
        // 4-decode: each holds 3 pages after prefill (1 page × 3 layers)
        // and needs 9 at completion. Their first decode appends (3 pages
        // each, page boundary at 2 tokens) collide: B parks — all three
        // layers' caches retained — and resumes after A finishes.
        let (mut s, model) = model_scheduler(ServeConfig {
            max_in_flight: 2,
            kv_pages: 9,
            page_size: 2,
            arrival_window: 0,
            prefill_chunk: 4,
            admission: AdmissionMode::PagedUsage,
            eviction: EvictionMode::Recompute,
            swap_bytes: usize::MAX,
        });
        let ra = model_request(model, 0, 2, 6, 71);
        let rb = model_request(model, 0, 2, 6, 72);
        let a = s.submit_model(ra.clone()).unwrap();
        let b = s.submit_model(rb.clone()).unwrap();
        let mut completions = Vec::new();
        let mut preempted = Vec::new();
        let mut resumed = Vec::new();
        for _ in 0..64 {
            let r = s.tick().unwrap();
            s.assert_kv_invariants();
            preempted.extend(r.preempted);
            resumed.extend(r.resumed);
            completions.extend(r.completed);
            if s.is_idle() {
                break;
            }
        }
        assert!(s.is_idle());
        assert_eq!(preempted, vec![b], "the younger sequence is the victim");
        assert_eq!(resumed, vec![b]);
        assert_eq!(completions.len(), 2);
        assert_eq!(completions[0].id, a);
        assert_eq!(completions[1].id, b);
        assert_eq!(completions[1].preemptions, 1);
        // Preempt-and-resume must not perturb a single bit of either
        // output.
        let chunk = s.config().prefill_chunk;
        for (c, r) in [(&completions[0], &ra), (&completions[1], &rb)] {
            let want =
                crate::trace::sequential_model_reference(s.engine(), s.model(model), r, chunk)
                    .unwrap();
            assert_eq!(c.output, want);
        }
        assert_eq!(s.kv_used_pages(), 0);
    }

    #[test]
    fn swap_eviction_resumes_plan_sequences_bitwise() {
        // The plan-sequence page squeeze under EvictionMode::Swap: the
        // victim's cache transits the arena instead of being recomputed,
        // and the completion is still bitwise the sequential serve.
        let (mut s, plan) = scheduler(ServeConfig {
            max_in_flight: 2,
            kv_pages: 3,
            page_size: 2,
            arrival_window: 0,
            prefill_chunk: 4,
            admission: AdmissionMode::PagedUsage,
            eviction: EvictionMode::Swap,
            swap_bytes: usize::MAX,
        });
        let ra = request(plan, 0, 2, 6, 61);
        let rb = request(plan, 0, 2, 6, 62);
        let a = s.submit(ra.clone()).unwrap();
        let b = s.submit(rb.clone()).unwrap();
        let mut completions = Vec::new();
        let mut resumed = Vec::new();
        for _ in 0..64 {
            let r = s.tick().unwrap();
            s.assert_kv_invariants();
            resumed.extend(r.resumed);
            completions.extend(r.completed);
            if s.is_idle() {
                break;
            }
        }
        assert!(s.is_idle());
        assert_eq!(resumed, vec![b], "the swapped victim resumes");
        assert!(s.swap_peak_bytes() > 0, "the park must transit the arena");
        assert_eq!(s.swap_fallbacks(), 0);
        assert_eq!(s.swap_parked_bytes(), 0, "resume drains the arena");
        let chunk = s.config().prefill_chunk;
        for (c, r, id) in [(&completions[0], &ra, a), (&completions[1], &rb, b)] {
            assert_eq!(c.id, id);
            let want =
                crate::trace::sequential_reference(s.engine(), s.plan(plan), r, chunk).unwrap();
            assert_eq!(c.output, want, "swap-mode serving must be bitwise");
        }
        assert_eq!(s.kv_used_pages(), 0);
    }

    #[test]
    fn swap_eviction_resumes_model_stacks_bitwise() {
        // The 3-layer squeeze under EvictionMode::Swap: the victim's
        // whole stack parks as one arena entry and re-adopts atomically.
        let (mut s, model) = model_scheduler(ServeConfig {
            max_in_flight: 2,
            kv_pages: 9,
            page_size: 2,
            arrival_window: 0,
            prefill_chunk: 4,
            admission: AdmissionMode::PagedUsage,
            eviction: EvictionMode::Swap,
            swap_bytes: usize::MAX,
        });
        let ra = model_request(model, 0, 2, 6, 71);
        let rb = model_request(model, 0, 2, 6, 72);
        let a = s.submit_model(ra.clone()).unwrap();
        let b = s.submit_model(rb.clone()).unwrap();
        let mut completions = Vec::new();
        let mut peak_parked = 0usize;
        for _ in 0..64 {
            let r = s.tick().unwrap();
            s.assert_kv_invariants();
            peak_parked = peak_parked.max(s.swap_parked_bytes());
            completions.extend(r.completed);
            if s.is_idle() {
                break;
            }
        }
        assert!(s.is_idle());
        // At park time the victim holds 2 prompt tokens across 3 layers
        // of 3 heads × dk 4 — the arena entry is the whole stack.
        assert!(
            peak_parked >= 3 * 2 * 3 * (4 + 4) * std::mem::size_of::<f64>(),
            "the parked entry must hold all three layers ({peak_parked} bytes)"
        );
        assert_eq!(s.swap_fallbacks(), 0);
        assert_eq!(s.swap_parked_bytes(), 0);
        let chunk = s.config().prefill_chunk;
        assert_eq!(completions.len(), 2);
        assert_eq!((completions[0].id, completions[1].id), (a, b));
        for (c, r) in [(&completions[0], &ra), (&completions[1], &rb)] {
            let want =
                crate::trace::sequential_model_reference(s.engine(), s.model(model), r, chunk)
                    .unwrap();
            assert_eq!(c.output, want, "swapped stacks must resume bitwise");
        }
        assert_eq!(s.kv_used_pages(), 0);
    }

    #[test]
    fn cancel_while_swap_parked_reclaims_arena_bytes() {
        // Cancelling a sequence whose cache lives in the swap arena must
        // free the arena bytes immediately — no orphaned entries.
        let (mut s, plan) = scheduler(ServeConfig {
            max_in_flight: 2,
            kv_pages: 3,
            page_size: 2,
            arrival_window: 0,
            prefill_chunk: 4,
            admission: AdmissionMode::PagedUsage,
            eviction: EvictionMode::Swap,
            swap_bytes: usize::MAX,
        });
        let _a = s.submit(request(plan, 0, 2, 6, 51)).unwrap();
        let b = s.submit(request(plan, 0, 2, 6, 52)).unwrap();
        for _ in 0..16 {
            if s.parked_len() > 0 {
                break;
            }
            s.tick().unwrap();
        }
        assert_eq!(s.parked_len(), 1, "b parked under page pressure");
        assert!(s.swap_parked_bytes() > 0, "b's cache lives in the arena");
        assert!(s.cancel(b), "parked cancel");
        assert_eq!(s.swap_parked_bytes(), 0, "cancel reclaims the arena bytes");
        s.assert_kv_invariants();
        // The survivor still drains normally.
        for _ in 0..32 {
            s.tick().unwrap();
            if s.is_idle() {
                break;
            }
        }
        assert!(s.is_idle());
        assert_eq!(s.kv_used_pages(), 0);
    }

    #[test]
    fn routed_sequences_preempt_and_resume_bitwise() {
        // The preemption squeeze from above, on a routed plan: the cache
        // carries the routing, eviction drops both, and resume rebuilds
        // both from the retained q/k/v rows — the victim's output must
        // still be bitwise the uninterrupted sequential serve.
        let mut s: Scheduler<'static, f64> = Scheduler::new(
            AttentionEngine::with_threads(2),
            ServeConfig {
                max_in_flight: 2,
                kv_pages: 3,
                page_size: 2,
                arrival_window: 0,
                prefill_chunk: 4,
                admission: AdmissionMode::PagedUsage,
                eviction: EvictionMode::Recompute,
                swap_bytes: usize::MAX,
            },
        )
        .unwrap();
        let plan = s
            .register_plan(
                AttentionPlan::single(AttentionKernel::Routed {
                    groups: 2,
                    seed: 0x0DDB,
                    causal: true,
                })
                .unwrap(),
            )
            .unwrap();
        let ra = request(plan, 0, 2, 6, 61);
        let rb = request(plan, 0, 2, 6, 62);
        let a = s.submit(ra.clone()).unwrap();
        let b = s.submit(rb.clone()).unwrap();
        let mut completions = Vec::new();
        let mut preempted = Vec::new();
        for _ in 0..64 {
            let r = s.tick().unwrap();
            s.assert_kv_invariants();
            preempted.extend(r.preempted);
            completions.extend(r.completed);
            if s.is_idle() {
                break;
            }
        }
        assert!(s.is_idle());
        assert_eq!(preempted, vec![b], "the younger routed sequence parks");
        assert_eq!(completions.len(), 2);
        let chunk = s.config().prefill_chunk;
        for (c, r, id) in [(&completions[0], &ra, a), (&completions[1], &rb, b)] {
            assert_eq!(c.id, id);
            let want =
                crate::trace::sequential_reference(s.engine(), s.plan(plan), r, chunk).unwrap();
            assert_eq!(c.output, want, "routed serving must be bitwise");
        }
        assert_eq!(s.kv_used_pages(), 0);
    }

    #[test]
    fn auto_pattern_resolves_by_cost_and_page_pressure() {
        // Two plans: a 1-wide local window (cheapest) and a 64-wide one
        // (dense at these lengths). Auto picks along the cheapest-first
        // ranking by free-page fraction.
        let mk = || {
            let mut s: Scheduler<'static, f64> = Scheduler::new(
                AttentionEngine::with_threads(2),
                ServeConfig {
                    max_in_flight: 4,
                    kv_pages: 4,
                    page_size: 4,
                    arrival_window: 0,
                    prefill_chunk: 4,
                    admission: AdmissionMode::PagedUsage,
                    eviction: EvictionMode::Recompute,
                    swap_bytes: usize::MAX,
                },
            )
            .unwrap();
            let sparse = s
                .register_plan(AttentionPlan::single(AttentionKernel::Local { n: 1 }).unwrap())
                .unwrap();
            let dense = s
                .register_plan(AttentionPlan::single(AttentionKernel::Local { n: 64 }).unwrap())
                .unwrap();
            (s, sparse, dense)
        };
        let auto_request = |prompt: usize, total: usize, seed: u64| {
            let mut r = request(PlanId(0), 0, prompt, total, seed);
            r.pattern = PatternChoice::Auto;
            r
        };

        // Empty pool → free fraction 1 → the densest pattern.
        let (mut s, _, dense) = mk();
        let id = s.submit(auto_request(4, 4, 81)).unwrap();
        let mut completions = Vec::new();
        for _ in 0..16 {
            completions.extend(s.tick().unwrap().completed);
            if s.is_idle() {
                break;
            }
        }
        let c = completions.iter().find(|c| c.id == id).unwrap();
        assert_eq!(
            c.target,
            ServeTarget::Plan(dense),
            "a wide-open pool affords the densest pattern"
        );

        // 3 of 4 pages taken → free fraction 1/4 → the sparsest.
        let (mut s, sparse, _) = mk();
        s.submit(request(PlanId(0), 0, 12, 12, 82)).unwrap();
        s.tick().unwrap(); // admits the hog: 3 pages held
        assert_eq!(s.kv_free_pages(), 1);
        let id = s.submit(auto_request(4, 4, 83)).unwrap();
        let mut completions = Vec::new();
        for _ in 0..16 {
            completions.extend(s.tick().unwrap().completed);
            if s.is_idle() {
                break;
            }
        }
        let c = completions.iter().find(|c| c.id == id).unwrap();
        assert_eq!(
            c.target,
            ServeTarget::Plan(sparse),
            "a starved pool forces the sparsest pattern"
        );
        // The original Auto choice resolved at admission is what ran —
        // the output is bitwise the sequential serve under that plan.
        let want = crate::trace::sequential_reference(
            s.engine(),
            s.plan(sparse),
            &auto_request(4, 4, 83),
            s.config().prefill_chunk,
        )
        .unwrap();
        assert_eq!(c.output, want);
    }

    #[test]
    fn arrival_window_delays_admission() {
        let (mut s, plan) = scheduler(ServeConfig {
            arrival_window: 2,
            ..ServeConfig::default()
        });
        s.submit(request(plan, 0, 2, 2, 31)).unwrap();
        assert!(s.tick().unwrap().admitted.is_empty(), "tick 0: batching");
        assert!(s.tick().unwrap().admitted.is_empty(), "tick 1: batching");
        let r = s.tick().unwrap();
        assert_eq!(r.admitted.len(), 1, "tick 2: eligible");
    }

    #[test]
    fn strict_priority_with_fifo_within_a_class() {
        let (mut s, plan) = scheduler(ServeConfig {
            max_in_flight: 1,
            kv_pages: 8,
            page_size: 8,
            arrival_window: 0,
            prefill_chunk: 8,
            admission: AdmissionMode::PagedUsage,
            eviction: EvictionMode::Recompute,
            swap_bytes: usize::MAX,
        });
        let low_a = s.submit(request(plan, 3, 2, 2, 41)).unwrap();
        let low_b = s.submit(request(plan, 3, 2, 2, 42)).unwrap();
        let high = s.submit(request(plan, 0, 2, 2, 43)).unwrap();
        let mut order = Vec::new();
        for _ in 0..16 {
            order.extend(s.tick().unwrap().admitted);
            if s.is_idle() {
                break;
            }
        }
        assert_eq!(order, vec![high, low_a, low_b]);
    }

    #[test]
    fn cancel_pending_parked_and_in_flight() {
        // Same page-squeeze as the preemption test, plus a third pending
        // request, so all three cancel paths are exercised.
        let (mut s, plan) = scheduler(ServeConfig {
            max_in_flight: 2,
            kv_pages: 3,
            page_size: 2,
            arrival_window: 0,
            prefill_chunk: 4,
            admission: AdmissionMode::PagedUsage,
            eviction: EvictionMode::Recompute,
            swap_bytes: usize::MAX,
        });
        let a = s.submit(request(plan, 0, 2, 6, 51)).unwrap();
        let b = s.submit(request(plan, 0, 2, 6, 52)).unwrap();
        let c = s.submit(request(plan, 1, 2, 6, 53)).unwrap();
        // Tick until b is parked by the page squeeze.
        for _ in 0..16 {
            if s.parked_len() > 0 {
                break;
            }
            s.tick().unwrap();
        }
        assert_eq!(s.parked_len(), 1, "b parked under page pressure");
        assert!(s.cancel(c), "pending cancel");
        assert!(s.cancel(b), "parked cancel");
        assert!(s.cancel(a), "in-flight cancel");
        assert!(!s.cancel(a), "double cancel is a no-op");
        assert_eq!(s.kv_used_pages(), 0);
        assert!(s.is_idle());
        s.assert_kv_invariants();
    }

    #[test]
    fn debug_formats() {
        let (s, _) = scheduler(ServeConfig::default());
        assert!(format!("{s:?}").contains("Scheduler"));
    }
}
