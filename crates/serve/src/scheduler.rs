//! The continuous-batching scheduler.
//!
//! One [`Scheduler`] owns an [`AttentionEngine`], a set of registered
//! [`AttentionPlan`]s, per-priority pending queues, and a block-paged
//! [`PagePool`] of per-sequence KV caches. Time is a **virtual clock** of
//! ticks: every [`Scheduler::tick`] admits what fits, then flattens *all*
//! runnable work — each prefilling sequence's next chunk of query rows
//! plus each decoding sequence's next token row — into **one**
//! [`AttentionEngine::run_batch`] launch per distinct plan (a single
//! launch when the workload shares a plan), exactly the mixed-geometry
//! batch shape the engine's [`gpa_core::Geometry`] windows exist for.
//!
//! ## Admission policy
//!
//! - **Arrival batching**: a request waits [`ServeConfig::arrival_window`]
//!   ticks in its queue before becoming eligible, so bursts admit (and
//!   prefill) together;
//! - **Strict priority, FIFO within a class**: classes admit in ascending
//!   priority value; within a class, preempted sequences resume before
//!   anything still pending (they are strictly older), the queue is FIFO,
//!   and an eligible head that does not fit blocks *all* lower-priority
//!   admission (no overtaking), which is what makes admission
//!   starvation-free for any request that can ever fit;
//! - **Paged KV** ([`AdmissionMode::PagedUsage`], the default): a
//!   sequence is admitted on its *current* page need — the pages its
//!   prompt occupies right now — not its worst case, so short prompts
//!   with long decode budgets pack the pool instead of reserving it. The
//!   pages this tick's decode appends are about to consume are held back
//!   from admission, so newcomers can never take a page out from under a
//!   running sequence within the tick. A request whose *total* page need
//!   exceeds the whole pool is rejected at submission, before any cache
//!   exists for it.
//! - **Worst-case reservation** ([`AdmissionMode::WorstCaseReserve`]):
//!   the legacy policy, kept for A/B comparison — admission reserves
//!   `pages_for(prompt + decode)` up front in a ledger, so an admitted
//!   sequence can always grow to completion and preemption never fires.
//!
//! ## Preemption (evict-and-recompute)
//!
//! Paged admission oversubscribes by design, so a tick can find that its
//! decode appends need more pages than are free. The scheduler then
//! **preempts**: walking sequences from most urgent (lowest priority
//! class, earliest admission) to least, it grants each append by evicting
//! victims from the opposite end — the lowest-priority, most-recently
//! admitted sequence first. A victim's pages are released, its cache is
//! dropped (evict-and-recompute; a scattered page layout would enable
//! evict-and-swap behind the same API), and it parks on its class's
//! resume queue holding its prompt, generated K/V rows, computed output
//! rows, and phase cursor. When pages free up it is re-admitted —
//! resume re-extends the retained `prompt + generated` K/V rows into a
//! fresh cache (bit-identical rows, since K/V rows are deterministic
//! inputs) and the sequence continues exactly where it stopped, so every
//! completed output is still **bitwise** the sequential reference. The
//! most urgent in-flight sequence is never evicted and always advances,
//! so preemption cannot livelock.
//!
//! ## Failure atomicity
//!
//! A tick either applies completely or not at all: if any launch fails,
//! every decode-token append is rolled back (pages returned), this tick's
//! preemptions are **un-preempted** (victims rebuilt in place, page
//! tables and queue positions restored), this tick's admissions are
//! **un-admitted** (pages released, requests returned to their queue
//! fronts in order), cursors do not advance, and the virtual clock does
//! not move — a failed tick leaves no trace. The returned
//! [`crate::ServeError::Launch`] names the offending request when its
//! geometry provably cannot run under its plan, so the caller can
//! [`Scheduler::cancel`] it and the rest of the workload drains untouched
//! (exercised by `tests/serving_sim.rs`).

use crate::error::ServeError;
use crate::request::{Completion, PlanId, RequestId, ServeRequest, TickReport};
use gpa_core::{AttentionEngine, AttentionPlan, AttentionRequest, AttnError, PagePool, SeqId};
use gpa_tensor::{Matrix, Real};
use std::collections::{BTreeMap, VecDeque};

/// How admission charges a sequence against the KV page pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionMode {
    /// Admit on *current* page usage: a sequence costs the pages its
    /// cached tokens occupy right now, decode growth allocates pages on
    /// append, and page exhaustion is resolved by preemption. The
    /// PagedAttention policy, and the default.
    #[default]
    PagedUsage,
    /// Admit on *worst-case* reservation: a sequence reserves pages for
    /// its full prompt + decode length up front, so it can always run to
    /// completion and preemption never fires. The legacy policy, kept as
    /// the A/B baseline — it strands the difference between reserved and
    /// used pages.
    WorstCaseReserve,
}

/// Admission-policy knobs for a [`Scheduler`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Maximum sequences holding KV pages at once.
    pub max_in_flight: usize,
    /// Total pages in the KV pool.
    pub kv_pages: usize,
    /// Cached tokens per page.
    pub page_size: usize,
    /// Ticks a request waits in its queue before it is eligible for
    /// admission — lets bursts of arrivals batch their prefills together.
    pub arrival_window: u64,
    /// Query rows per prefill chunk: each prefilling sequence advances by
    /// at most this many rows per tick, bounding per-tick prefill work so
    /// decode rows never wait behind a whole long prompt.
    pub prefill_chunk: usize,
    /// How admission charges sequences against the pool.
    pub admission: AdmissionMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            // 4096 × 16 = the same 65536-token capacity the old
            // token-budget default provided.
            max_in_flight: 32,
            kv_pages: 4096,
            page_size: 16,
            arrival_window: 0,
            prefill_chunk: 128,
            admission: AdmissionMode::PagedUsage,
        }
    }
}

struct Pending<T> {
    id: RequestId,
    submitted: u64,
    request: ServeRequest<T>,
}

#[derive(Clone, Copy)]
enum Phase {
    /// `done` prompt rows computed so far.
    Prefill { done: usize },
    /// `done` tokens decoded so far.
    Decode { done: usize },
}

/// Tokens the sequence's cache holds at this phase cursor: the whole
/// prompt (extended at admission) plus every decoded token — what a
/// preempted sequence must re-extend to resume.
fn cursor_tokens(phase: Phase, prompt: usize) -> usize {
    match phase {
        Phase::Prefill { .. } => prompt,
        Phase::Decode { done } => prompt + done,
    }
}

struct InFlight<T> {
    id: RequestId,
    priority: u8,
    plan: usize,
    seq: SeqId,
    prompt: usize,
    phase: Phase,
    q: Matrix<T>,
    k: Matrix<T>,
    v: Matrix<T>,
    out: Matrix<T>,
    submitted: u64,
    /// First admission tick — preemption does not reset it.
    admitted: u64,
    /// Times this sequence has been preempted so far.
    preemptions: u32,
    /// Pages reserved in the ledger ([`AdmissionMode::WorstCaseReserve`]
    /// only; 0 under paged admission).
    reserved_pages: usize,
}

impl<T: Real> InFlight<T> {
    fn total(&self) -> usize {
        self.q.rows()
    }

    fn is_complete(&self) -> bool {
        match self.phase {
            Phase::Prefill { .. } => false,
            Phase::Decode { done } => self.prompt + done == self.total(),
        }
    }

    fn park(self) -> Parked<T> {
        Parked {
            id: self.id,
            priority: self.priority,
            plan: self.plan,
            prompt: self.prompt,
            phase: self.phase,
            q: self.q,
            k: self.k,
            v: self.v,
            out: self.out,
            submitted: self.submitted,
            admitted: self.admitted,
            preemptions: self.preemptions,
        }
    }
}

/// A preempted sequence waiting on a resume queue: everything needed to
/// rebuild its cache (the retained prompt + generated K/V rows up to the
/// phase cursor) and continue — computed output rows included, so no row
/// is ever computed twice.
struct Parked<T> {
    id: RequestId,
    priority: u8,
    plan: usize,
    prompt: usize,
    phase: Phase,
    q: Matrix<T>,
    k: Matrix<T>,
    v: Matrix<T>,
    out: Matrix<T>,
    submitted: u64,
    admitted: u64,
    preemptions: u32,
}

impl<T: Real> Parked<T> {
    fn unpark(self, seq: SeqId) -> InFlight<T> {
        InFlight {
            id: self.id,
            priority: self.priority,
            plan: self.plan,
            seq,
            prompt: self.prompt,
            phase: self.phase,
            q: self.q,
            k: self.k,
            v: self.v,
            out: self.out,
            submitted: self.submitted,
            admitted: self.admitted,
            preemptions: self.preemptions,
            reserved_pages: 0,
        }
    }
}

/// This tick's unit of work for one sequence.
enum Work {
    /// Prefill query rows `start .. start + rows` against the prompt KV.
    Prefill { start: usize, rows: usize },
    /// Decode token `t` (appends its K/V row, computes one decode row).
    Decode { t: usize },
}

/// The continuous-batching serving scheduler — see the [module
/// docs](self) for the policy and [`crate`] for an end-to-end example.
///
/// `'p` is the lifetime of mask data borrowed by the registered plans
/// (implicit-kernel plans borrow nothing and work with `'static`).
pub struct Scheduler<'p, T> {
    engine: AttentionEngine,
    config: ServeConfig,
    plans: Vec<AttentionPlan<'p>>,
    pending: BTreeMap<u8, VecDeque<Pending<T>>>,
    pending_len: usize,
    /// Resume queues: preempted sequences per priority class, kept in
    /// request-id order (= original admission order within the class).
    parked: BTreeMap<u8, VecDeque<Parked<T>>>,
    parked_len: usize,
    in_flight: Vec<InFlight<T>>,
    pool: PagePool<T>,
    /// Reservation ledger, in pages ([`AdmissionMode::WorstCaseReserve`]
    /// only; stays 0 under paged admission).
    reserved_pages: usize,
    preemption_events: u64,
    now: u64,
    next_id: u64,
}

impl<'p, T: Real> Scheduler<'p, T> {
    /// Build a scheduler owning `engine` under the given admission policy.
    pub fn new(engine: AttentionEngine, config: ServeConfig) -> Result<Self, ServeError> {
        if config.max_in_flight == 0 {
            return Err(ServeError::BadConfig {
                what: "max_in_flight must be positive",
            });
        }
        if config.prefill_chunk == 0 {
            return Err(ServeError::BadConfig {
                what: "prefill_chunk must be positive",
            });
        }
        if config.kv_pages == 0 {
            return Err(ServeError::BadConfig {
                what: "kv_pages must be positive",
            });
        }
        if config.page_size == 0 {
            return Err(ServeError::BadConfig {
                what: "page_size must be positive",
            });
        }
        Ok(Scheduler {
            engine,
            config,
            plans: Vec::new(),
            pending: BTreeMap::new(),
            pending_len: 0,
            parked: BTreeMap::new(),
            parked_len: 0,
            in_flight: Vec::new(),
            pool: PagePool::new(config.kv_pages, config.page_size),
            reserved_pages: 0,
            preemption_events: 0,
            now: 0,
            next_id: 0,
        })
    }

    /// Register a compiled plan; submitted requests name it by the
    /// returned id. Dense-baseline plans are rejected — they have no
    /// prefill-window or decode-row form.
    pub fn register_plan(&mut self, plan: AttentionPlan<'p>) -> Result<PlanId, ServeError> {
        if !plan.is_composable() {
            return Err(ServeError::BadRequest {
                what: "dense baseline plans have no serving form",
            });
        }
        self.plans.push(plan);
        Ok(PlanId(self.plans.len() - 1))
    }

    /// A registered plan.
    ///
    /// # Panics
    /// Panics if `id` did not come from this scheduler's
    /// [`Self::register_plan`].
    pub fn plan(&self, id: PlanId) -> &AttentionPlan<'p> {
        &self.plans[id.0]
    }

    /// The engine this scheduler launches through.
    pub fn engine(&self) -> &AttentionEngine {
        &self.engine
    }

    /// The admission policy.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Current virtual time (ticks executed so far).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Requests queued but not yet admitted.
    pub fn pending_len(&self) -> usize {
        self.pending_len
    }

    /// Preempted sequences waiting on resume queues.
    pub fn parked_len(&self) -> usize {
        self.parked_len
    }

    /// Sequences currently holding KV pages.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Pending + parked + in-flight sequences.
    pub fn outstanding(&self) -> usize {
        self.pending_len + self.parked_len + self.in_flight.len()
    }

    /// True when nothing is pending, parked, or in flight.
    pub fn is_idle(&self) -> bool {
        self.outstanding() == 0
    }

    /// Total pages in the KV pool.
    pub fn kv_total_pages(&self) -> usize {
        self.pool.total_pages()
    }

    /// Pages on the free list right now.
    pub fn kv_free_pages(&self) -> usize {
        self.pool.free_pages()
    }

    /// Pages mapped into live page tables right now.
    pub fn kv_used_pages(&self) -> usize {
        self.pool.used_pages()
    }

    /// Cached tokens per page.
    pub fn kv_page_size(&self) -> usize {
        self.pool.page_size()
    }

    /// KV tokens actually cached right now.
    pub fn kv_used_tokens(&self) -> usize {
        self.pool.used_tokens()
    }

    /// Pages held in the worst-case reservation ledger
    /// ([`AdmissionMode::WorstCaseReserve`]; always 0 under paged
    /// admission).
    pub fn kv_reserved_pages(&self) -> usize {
        self.reserved_pages
    }

    /// Total sequence preemptions so far (each park of each sequence
    /// counts once).
    pub fn preemption_events(&self) -> u64 {
        self.preemption_events
    }

    /// Assert the paged-KV invariants: page conservation
    /// (`free + mapped == total`), no page double-mapped, every page
    /// table exactly covering its cache, and — under worst-case
    /// reservation — the ledger in sync and every sequence within its
    /// reservation. The serving simulation calls this after every tick.
    ///
    /// # Panics
    /// Panics when an invariant is violated.
    pub fn assert_kv_invariants(&self) {
        self.pool.assert_page_invariants();
        let ledger: usize = self.in_flight.iter().map(|s| s.reserved_pages).sum();
        assert_eq!(
            ledger, self.reserved_pages,
            "reservation ledger out of sync"
        );
        assert!(
            self.reserved_pages <= self.pool.total_pages(),
            "reserved {} pages exceed the pool's {}",
            self.reserved_pages,
            self.pool.total_pages()
        );
        for s in &self.in_flight {
            if s.reserved_pages > 0 {
                assert!(
                    self.pool.pages_held(s.seq) <= s.reserved_pages,
                    "sequence holds more pages than it reserved"
                );
            }
        }
    }

    /// Queue a request. Validation is immediate (shape checks, plan
    /// lookup, and the can-it-ever-fit capacity check); admission happens
    /// on a later [`Self::tick`]. No KV cache exists — and nothing is
    /// mutated — for a rejected request.
    pub fn submit(&mut self, request: ServeRequest<T>) -> Result<RequestId, ServeError> {
        if self.plans.get(request.plan.0).is_none() {
            return Err(ServeError::UnknownPlan);
        }
        let total = request.q.rows();
        if total == 0 {
            return Err(ServeError::BadRequest {
                what: "a request needs at least one token",
            });
        }
        if request.k.rows() != total || request.v.rows() != total {
            return Err(ServeError::BadRequest {
                what: "Q/K/V row counts differ",
            });
        }
        if request.q.cols() != request.k.cols() {
            return Err(ServeError::BadRequest {
                what: "Q and K disagree on the key dimension",
            });
        }
        if request.q.cols() == 0 || request.v.cols() == 0 {
            return Err(ServeError::BadRequest {
                what: "key/value dimensions must be positive",
            });
        }
        if request.prompt == 0 || request.prompt > total {
            return Err(ServeError::BadRequest {
                what: "prompt must cover between 1 and all of the rows",
            });
        }
        let need_pages = self.pool.pages_for(total);
        if need_pages > self.pool.total_pages() {
            return Err(ServeError::OverCapacity {
                need_pages,
                total_pages: self.pool.total_pages(),
            });
        }
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.pending
            .entry(request.priority)
            .or_default()
            .push_back(Pending {
                id,
                submitted: self.now,
                request,
            });
        self.pending_len += 1;
        Ok(id)
    }

    /// Drop a request — pending, parked, or in flight (releasing its KV
    /// pages). Returns false when the id is unknown or already completed.
    pub fn cancel(&mut self, id: RequestId) -> bool {
        for queue in self.pending.values_mut() {
            if let Some(pos) = queue.iter().position(|p| p.id == id) {
                queue.remove(pos);
                self.pending_len -= 1;
                return true;
            }
        }
        for queue in self.parked.values_mut() {
            if let Some(pos) = queue.iter().position(|p| p.id == id) {
                queue.remove(pos);
                self.parked_len -= 1;
                return true;
            }
        }
        if let Some(pos) = self.in_flight.iter().position(|s| s.id == id) {
            let seq = self.in_flight.remove(pos);
            self.pool.release(seq.seq);
            self.reserved_pages -= seq.reserved_pages;
            return true;
        }
        false
    }

    /// Pages this sequence's decode append will take this tick: one when
    /// the append crosses a page boundary, zero otherwise (and zero for
    /// prefilling sequences — their prompt pages were taken at admission).
    fn append_need(&self, s: &InFlight<T>) -> usize {
        match s.phase {
            Phase::Prefill { .. } => 0,
            Phase::Decode { done } => usize::from((s.prompt + done) % self.config.page_size == 0),
        }
    }

    /// Pages a parked sequence needs to resume *and run this very tick*:
    /// the pages of its retained `prompt + generated` tokens, plus one
    /// when it resumes into decode with its cursor on a page boundary
    /// (its first append lands in the same tick).
    fn resume_need(&self, p: &Parked<T>) -> usize {
        let tokens = cursor_tokens(p.phase, p.prompt);
        let append = match p.phase {
            Phase::Decode { .. } if tokens % self.config.page_size == 0 => 1,
            _ => 0,
        };
        self.pool.pages_for(tokens) + append
    }

    /// Admit eligible sequences in (priority class, resumed-then-pending,
    /// FIFO) order until one does not fit. Fresh admission appends the
    /// prompt's K/V rows to the sequence's cache; resume re-extends the
    /// retained `prompt + generated` rows — bit-identical to what was
    /// evicted, because K/V rows are deterministic inputs.
    ///
    /// `append_needs` is the page count this tick's already-running
    /// decode appends will consume; paged admission keeps that many pages
    /// off the table so admission can never force a preemption in the
    /// same tick.
    fn admit(&mut self, now: u64, append_needs: usize) -> (Vec<RequestId>, Vec<RequestId>) {
        let mut fresh = Vec::new();
        let mut resumed = Vec::new();
        let mut headroom = match self.config.admission {
            AdmissionMode::PagedUsage => self.pool.free_pages().saturating_sub(append_needs),
            AdmissionMode::WorstCaseReserve => self.pool.total_pages() - self.reserved_pages,
        };
        let classes: Vec<u8> = {
            let mut c: Vec<u8> = self
                .parked
                .keys()
                .chain(self.pending.keys())
                .copied()
                .collect();
            c.sort_unstable();
            c.dedup();
            c
        };
        'classes: for class in classes {
            // Resume queue first: parked sequences were admitted from the
            // head of this class's queue once, so their ids precede every
            // id still pending — resumed-first IS global FIFO order.
            while let Some(front) = self.parked.get(&class).and_then(|q| q.front()) {
                if self.in_flight.len() >= self.config.max_in_flight {
                    break 'classes;
                }
                let need = self.resume_need(front);
                if need > headroom {
                    // A parked head that cannot resume blocks all lower
                    // admission: no overtaking a preempted sequence.
                    break 'classes;
                }
                headroom -= need;
                let p = self
                    .parked
                    .get_mut(&class)
                    .expect("front exists")
                    .pop_front()
                    .expect("front exists");
                self.parked_len -= 1;
                let seq = self.pool.allocate(p.q.cols(), p.v.cols());
                let tokens = cursor_tokens(p.phase, p.prompt);
                let ok = self.pool.try_extend(
                    seq,
                    &p.k.rows_slice(0, tokens),
                    &p.v.rows_slice(0, tokens),
                );
                assert!(ok, "resume admission was granted its pages");
                resumed.push(p.id);
                self.in_flight.push(p.unpark(seq));
            }
            let Some(queue) = self.pending.get_mut(&class) else {
                continue;
            };
            while let Some(front) = queue.front() {
                if now < front.submitted + self.config.arrival_window {
                    // Class head still batching arrivals; it does not
                    // block other classes (FIFO within the class holds —
                    // later same-class requests are younger still).
                    break;
                }
                if self.in_flight.len() >= self.config.max_in_flight {
                    break 'classes;
                }
                let total = front.request.q.rows();
                let need = match self.config.admission {
                    AdmissionMode::PagedUsage => self.pool.pages_for(front.request.prompt),
                    AdmissionMode::WorstCaseReserve => self.pool.pages_for(total),
                };
                if need > headroom {
                    // An eligible head that cannot be placed blocks all
                    // lower-priority admission: no overtaking, so every
                    // placeable request is eventually admitted.
                    break 'classes;
                }
                headroom -= need;
                let p = queue.pop_front().expect("front exists");
                self.pending_len -= 1;
                let r = p.request;
                let reserved_pages = match self.config.admission {
                    AdmissionMode::PagedUsage => 0,
                    AdmissionMode::WorstCaseReserve => need,
                };
                self.reserved_pages += reserved_pages;
                let seq = self.pool.allocate(r.q.cols(), r.v.cols());
                let ok = self.pool.try_extend(
                    seq,
                    &r.k.rows_slice(0, r.prompt),
                    &r.v.rows_slice(0, r.prompt),
                );
                assert!(ok, "admission was granted its prompt pages");
                let out = Matrix::zeros(total, r.v.cols());
                self.in_flight.push(InFlight {
                    id: p.id,
                    priority: r.priority,
                    plan: r.plan.0,
                    seq,
                    prompt: r.prompt,
                    phase: Phase::Prefill { done: 0 },
                    q: r.q,
                    k: r.k,
                    v: r.v,
                    out,
                    submitted: p.submitted,
                    admitted: now,
                    preemptions: 0,
                    reserved_pages,
                });
                fresh.push(p.id);
            }
        }
        (fresh, resumed)
    }

    /// Advance the virtual clock by one tick: admit (resuming preempted
    /// sequences first), preempt if this tick's decode appends outstrip
    /// the free pages, gather every in-flight sequence's next unit of
    /// work, launch it all batched (one `run_batch` per distinct plan),
    /// apply outputs, and retire finished sequences.
    ///
    /// On a launch failure the tick is rolled back atomically — appends
    /// truncated (pages returned), victims rebuilt in place, admissions
    /// un-admitted, no cursor or clock movement — and the returned error
    /// names the offending request when identifiable; see the [module
    /// docs](self).
    pub fn tick(&mut self) -> Result<TickReport<T>, ServeError> {
        let now = self.now;

        // Pages this tick's decode appends will consume, counted before
        // admission so newcomers cannot take them. Because of this guard,
        // a tick admits or preempts, never both — which is what lets the
        // rollback below restore victims at their exact positions.
        let pre_needs: usize = self.in_flight.iter().map(|s| self.append_need(s)).sum();
        let (admitted, resumed) = self.admit(now, pre_needs);

        // Preemption resolution: when the appends still outstrip the free
        // pages (growth of previously admitted sequences, not admission),
        // grant appends from most urgent to least, evicting from the
        // opposite end.
        let needs: Vec<usize> = self.in_flight.iter().map(|s| self.append_need(s)).collect();
        let mut staged: Vec<(usize, Parked<T>)> = Vec::new();
        let mut preempted: Vec<RequestId> = Vec::new();
        if needs.iter().sum::<usize>() > self.pool.free_pages() {
            debug_assert!(
                admitted.is_empty() && resumed.is_empty(),
                "the admission guard makes admit-and-preempt ticks impossible"
            );
            // Urgency = admission order under strict priority: class
            // ascending, in-flight position (admission recency) ascending.
            let mut urgency: Vec<usize> = (0..self.in_flight.len()).collect();
            urgency.sort_by_key(|&i| (self.in_flight[i].priority, i));
            let mut available = self.pool.free_pages();
            let mut victim = vec![false; self.in_flight.len()];
            let mut hi = urgency.len();
            for p in 0..urgency.len() {
                if p >= hi {
                    break; // everyone from here on is already a victim
                }
                let i = urgency[p];
                let need = needs[i];
                while need > available && hi > p + 1 {
                    hi -= 1;
                    let v = urgency[hi];
                    victim[v] = true;
                    available += self.pool.pages_held(self.in_flight[v].seq);
                }
                if need <= available {
                    available -= need;
                } else {
                    // Even with every less-urgent sequence evicted the
                    // append does not fit: this sequence parks too. The
                    // most urgent sequence can never land here — its
                    // `pages_for(len + 1) ≤ pages_for(total)` fits the
                    // pool by the submission check — so at least one
                    // sequence always advances: no livelock.
                    victim[i] = true;
                    hi = p;
                }
            }
            for i in (0..self.in_flight.len()).rev() {
                if victim[i] {
                    let s = self.in_flight.remove(i);
                    self.pool.release(s.seq);
                    staged.push((i, s.park()));
                }
            }
            staged.reverse(); // ascending original index, for restore
            preempted = staged.iter().map(|(_, p)| p.id).collect();
        }

        // Pre-append cache lengths of every surviving sequence — the
        // rollback point if any launch below fails.
        let priors: Vec<usize> = self
            .in_flight
            .iter()
            .map(|s| self.pool.cache(s.seq).len())
            .collect();

        // One unit of work per in-flight sequence; decode work appends its
        // token's K/V row now (rolled back on failure). Every append was
        // granted its page above, so allocation cannot fail.
        let work: Vec<(usize, Work)> = self
            .in_flight
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let w = match s.phase {
                    Phase::Prefill { done } => Work::Prefill {
                        start: done,
                        rows: self.config.prefill_chunk.min(s.prompt - done),
                    },
                    Phase::Decode { done } => Work::Decode { t: s.prompt + done },
                };
                (i, w)
            })
            .collect();
        for (i, w) in &work {
            if let Work::Decode { t } = w {
                let s = &self.in_flight[*i];
                let ok = self.pool.try_append(s.seq, s.k.row(*t), s.v.row(*t));
                assert!(ok, "decode appends were granted pages at tick start");
            }
        }

        // Group by plan (BTreeMap: deterministic launch order) and launch.
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (wi, (i, _)) in work.iter().enumerate() {
            groups.entry(self.in_flight[*i].plan).or_default().push(wi);
        }
        let q_windows: Vec<Matrix<T>> = work
            .iter()
            .map(|(i, w)| {
                let s = &self.in_flight[*i];
                match *w {
                    Work::Prefill { start, rows } => s.q.rows_slice(start, start + rows),
                    Work::Decode { t } => s.q.rows_slice(t, t + 1),
                }
            })
            .collect();
        let mut outputs: Vec<Option<Matrix<T>>> = (0..work.len()).map(|_| None).collect();
        let mut rows_computed = 0usize;
        let mut launches = 0usize;
        let mut failure: Option<(usize, AttnError)> = None;
        for (plan_idx, items) in &groups {
            let requests: Vec<AttentionRequest<'_, T>> = items
                .iter()
                .map(|&wi| {
                    let (i, w) = &work[wi];
                    let cache = self.pool.cache(self.in_flight[*i].seq);
                    match *w {
                        Work::Prefill { start, .. } => AttentionRequest::windowed(
                            &q_windows[wi],
                            cache.k(0),
                            cache.v(0),
                            start,
                        ),
                        Work::Decode { .. } => {
                            AttentionRequest::decode(&q_windows[wi], cache.k(0), cache.v(0))
                        }
                    }
                })
                .collect();
            match self.engine.run_batch(&self.plans[*plan_idx], &requests) {
                Ok(outs) => {
                    launches += 1;
                    rows_computed += outs.iter().map(Matrix::rows).sum::<usize>();
                    for (&wi, out) in items.iter().zip(outs) {
                        outputs[wi] = Some(out);
                    }
                }
                Err(e) => {
                    failure = Some((*plan_idx, e));
                    break;
                }
            }
        }
        if let Some((failed_plan, e)) = failure {
            // The engine reports one error per batch; re-check the failed
            // group's geometries against the plan's compiled constraints
            // to name the offender, so callers can cancel it and recover.
            let offender = groups[&failed_plan].iter().find_map(|&wi| {
                let (i, w) = &work[wi];
                let s = &self.in_flight[*i];
                let plan = &self.plans[failed_plan];
                let (kv_rows, q_end) = match *w {
                    Work::Prefill { start, rows } => (s.prompt, start + rows),
                    Work::Decode { t } => (t + 1, t + 1),
                };
                let pinned_wrong = plan.kv_pin().is_some_and(|pin| kv_rows != pin);
                let out_of_bound = plan.q_bound().is_some_and(|bound| q_end > bound);
                (pinned_wrong || out_of_bound).then_some(s.id)
            });
            // Atomic rollback, part 1: every surviving sequence's cache
            // back to its pre-append length (returning this tick's
            // granted pages), no cursor or clock movement.
            for (s, &prior) in self.in_flight.iter().zip(&priors) {
                self.pool.truncate(s.seq, prior);
            }
            // Part 2a: un-preempt this tick's victims — rebuild each one
            // at its exact former position. Page conservation covers the
            // re-extends: the survivors' truncation returned every page
            // the grants took, and those grants were funded by the
            // victims' own releases.
            for (index, p) in staged {
                let seq = self.pool.allocate(p.q.cols(), p.v.cols());
                let tokens = cursor_tokens(p.phase, p.prompt);
                let ok = self.pool.try_extend(
                    seq,
                    &p.k.rows_slice(0, tokens),
                    &p.v.rows_slice(0, tokens),
                );
                assert!(ok, "victim restore is covered by page conservation");
                self.in_flight.insert(index, p.unpark(seq));
            }
            // Part 2b: un-admit this tick's admissions — release their
            // pages and push them back to their queue fronts (popping
            // from the in-flight tail and pushing front restores FIFO
            // order; resumed sequences go back to their resume queue in
            // id order), so a failed tick leaves NO trace.
            for _ in 0..admitted.len() + resumed.len() {
                let s = self.in_flight.pop().expect("admissions sit at the tail");
                self.pool.release(s.seq);
                self.reserved_pages -= s.reserved_pages;
                if s.preemptions > 0 {
                    let queue = self.parked.entry(s.priority).or_default();
                    let at = queue.partition_point(|x| x.id < s.id);
                    queue.insert(at, s.park());
                    self.parked_len += 1;
                } else {
                    self.pending
                        .entry(s.priority)
                        .or_default()
                        .push_front(Pending {
                            id: s.id,
                            submitted: s.submitted,
                            request: ServeRequest {
                                plan: PlanId(s.plan),
                                priority: s.priority,
                                prompt: s.prompt,
                                q: s.q,
                                k: s.k,
                                v: s.v,
                            },
                        });
                    self.pending_len += 1;
                }
            }
            return Err(ServeError::Launch {
                request: offender,
                source: e,
            });
        }

        // Apply outputs and advance each sequence's cursor.
        for ((i, w), out) in work.iter().zip(outputs) {
            let out = out.expect("all launches succeeded");
            let s = &mut self.in_flight[*i];
            match *w {
                Work::Prefill { start, rows } => {
                    for r in 0..rows {
                        s.out.row_mut(start + r).copy_from_slice(out.row(r));
                    }
                    let done = start + rows;
                    s.phase = if done == s.prompt {
                        Phase::Decode { done: 0 }
                    } else {
                        Phase::Prefill { done }
                    };
                }
                Work::Decode { t } => {
                    s.out.row_mut(t).copy_from_slice(out.row(0));
                    s.phase = Phase::Decode {
                        done: t + 1 - s.prompt,
                    };
                }
            }
        }

        // Retire completed sequences (in in-flight — i.e. admission —
        // order), releasing their KV pages.
        let mut completed = Vec::new();
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].is_complete() {
                let s = self.in_flight.remove(i);
                self.pool.release(s.seq);
                self.reserved_pages -= s.reserved_pages;
                completed.push(Completion {
                    id: s.id,
                    priority: s.priority,
                    plan: PlanId(s.plan),
                    output: s.out,
                    submitted: s.submitted,
                    admitted: s.admitted,
                    completed: now,
                    preemptions: s.preemptions,
                });
            } else {
                i += 1;
            }
        }

        // Commit this tick's preemptions: victims move to their resume
        // queues (id order = original admission order within the class).
        for (_, mut p) in staged {
            p.preemptions += 1;
            self.preemption_events += 1;
            let queue = self.parked.entry(p.priority).or_default();
            let at = queue.partition_point(|x| x.id < p.id);
            queue.insert(at, p);
            self.parked_len += 1;
        }

        self.now += 1;
        Ok(TickReport {
            tick: now,
            admitted,
            resumed,
            preempted,
            launches,
            rows_computed,
            completed,
        })
    }
}

impl<T: Real> std::fmt::Debug for Scheduler<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("plans", &self.plans.len())
            .field("pending", &self.pending_len)
            .field("parked", &self.parked_len)
            .field("in_flight", &self.in_flight.len())
            .field("free_pages", &self.pool.free_pages())
            .field("total_pages", &self.pool.total_pages())
            .field("preemptions", &self.preemption_events)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_core::AttentionKernel;
    use gpa_tensor::init::qkv;

    fn request(
        plan: PlanId,
        priority: u8,
        prompt: usize,
        total: usize,
        seed: u64,
    ) -> ServeRequest<f64> {
        let (q, k, v) = qkv::<f64>(total, 4, seed);
        ServeRequest {
            plan,
            priority,
            prompt,
            q,
            k,
            v,
        }
    }

    fn scheduler(config: ServeConfig) -> (Scheduler<'static, f64>, PlanId) {
        let mut s = Scheduler::new(AttentionEngine::with_threads(2), config).unwrap();
        let plan = s
            .register_plan(AttentionPlan::single(AttentionKernel::Local { n: 2 }).unwrap())
            .unwrap();
        (s, plan)
    }

    #[test]
    fn config_validation() {
        for bad in [
            ServeConfig {
                max_in_flight: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                prefill_chunk: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                kv_pages: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                page_size: 0,
                ..ServeConfig::default()
            },
        ] {
            assert!(matches!(
                Scheduler::<f64>::new(AttentionEngine::with_threads(1), bad),
                Err(ServeError::BadConfig { .. })
            ));
        }
    }

    #[test]
    fn submit_validation_rejects_bad_requests() {
        let (mut s, plan) = scheduler(ServeConfig {
            kv_pages: 4,
            page_size: 4,
            ..ServeConfig::default()
        });
        // Unknown plan.
        let r = request(PlanId(9), 0, 2, 4, 1);
        assert_eq!(s.submit(r), Err(ServeError::UnknownPlan));
        // Prompt outside 1..=total.
        let r = request(plan, 0, 0, 4, 2);
        assert!(matches!(s.submit(r), Err(ServeError::BadRequest { .. })));
        let r = request(plan, 0, 5, 4, 3);
        assert!(matches!(s.submit(r), Err(ServeError::BadRequest { .. })));
        // Mismatched K rows.
        let mut r = request(plan, 0, 2, 4, 4);
        r.k = Matrix::zeros(3, 4);
        assert!(matches!(s.submit(r), Err(ServeError::BadRequest { .. })));
        // Over the whole pool (17 tokens = 5 pages of 4): rejected at
        // submission.
        let r = request(plan, 0, 2, 17, 5);
        assert_eq!(
            s.submit(r),
            Err(ServeError::OverCapacity {
                need_pages: 5,
                total_pages: 4
            })
        );
        assert!(s.is_idle(), "rejected requests leave no state behind");
        assert_eq!(s.kv_used_tokens(), 0);
    }

    #[test]
    fn dense_plans_cannot_register() {
        let mut s: Scheduler<'static, f64> =
            Scheduler::new(AttentionEngine::with_threads(1), ServeConfig::default()).unwrap();
        assert!(matches!(
            s.register_plan(AttentionPlan::single(AttentionKernel::Flash).unwrap()),
            Err(ServeError::BadRequest { .. })
        ));
    }

    #[test]
    fn single_sequence_runs_to_completion() {
        let (mut s, plan) = scheduler(ServeConfig {
            max_in_flight: 4,
            kv_pages: 16,
            page_size: 4,
            arrival_window: 0,
            prefill_chunk: 3,
            admission: AdmissionMode::PagedUsage,
        });
        let id = s.submit(request(plan, 0, 7, 10, 11)).unwrap();
        let mut completions = Vec::new();
        for _ in 0..32 {
            completions.extend(s.tick().unwrap().completed);
            if s.is_idle() {
                break;
            }
        }
        assert!(s.is_idle());
        assert_eq!(completions.len(), 1);
        let c = &completions[0];
        assert_eq!(c.id, id);
        assert_eq!(c.output.shape(), (10, 4));
        assert_eq!(c.preemptions, 0);
        // ceil(7/3) = 3 prefill ticks + 3 decode ticks, admitted at tick 0.
        assert_eq!(c.admitted, 0);
        assert_eq!(c.completed, 5);
        assert_eq!(s.kv_used_pages(), 0, "pages released on completion");
    }

    #[test]
    fn admission_respects_pages_and_in_flight_caps() {
        let (mut s, plan) = scheduler(ServeConfig {
            max_in_flight: 1,
            kv_pages: 2,
            page_size: 4,
            arrival_window: 0,
            prefill_chunk: 8,
            admission: AdmissionMode::PagedUsage,
        });
        // Both fit the pool alone; the cap admits them one at a time.
        s.submit(request(plan, 0, 2, 3, 21)).unwrap();
        s.submit(request(plan, 0, 2, 3, 22)).unwrap();
        let r = s.tick().unwrap();
        assert_eq!(r.admitted.len(), 1);
        assert_eq!(s.in_flight_len(), 1);
        assert_eq!(s.pending_len(), 1);
        s.assert_kv_invariants();
        for _ in 0..16 {
            if s.is_idle() {
                break;
            }
            s.tick().unwrap();
            s.assert_kv_invariants();
        }
        assert!(s.is_idle());
    }

    #[test]
    fn paged_admission_packs_by_usage_not_worst_case() {
        // 8 pages × 4 tokens. Each request: 4-token prompt (1 page) but a
        // 24-token total (6 pages). Worst-case reservation admits one at
        // a time (6 of 8 pages reserved); paged admission packs all four
        // prompts into half the pool.
        let config = ServeConfig {
            max_in_flight: 4,
            kv_pages: 8,
            page_size: 4,
            arrival_window: 0,
            prefill_chunk: 8,
            admission: AdmissionMode::PagedUsage,
        };
        let (mut paged, plan) = scheduler(config);
        for seed in 0..4 {
            paged.submit(request(plan, 0, 4, 24, 31 + seed)).unwrap();
        }
        let r = paged.tick().unwrap();
        assert_eq!(r.admitted.len(), 4, "paged admission packs by usage");
        assert_eq!(paged.kv_used_pages(), 4);

        let (mut reserve, plan) = scheduler(ServeConfig {
            admission: AdmissionMode::WorstCaseReserve,
            ..config
        });
        for seed in 0..4 {
            reserve.submit(request(plan, 0, 4, 24, 31 + seed)).unwrap();
        }
        let r = reserve.tick().unwrap();
        assert_eq!(r.admitted.len(), 1, "reservation strands the pool");
        assert_eq!(reserve.kv_reserved_pages(), 6);
        reserve.assert_kv_invariants();
    }

    #[test]
    fn preemption_parks_the_youngest_and_resumes_it_to_completion() {
        // 3 pages × 2 tokens. Two sequences of 2-prompt/4-decode: each
        // needs 3 pages at completion, both admit on 1 page each. When
        // their decode appends collide on the last free page, the
        // more-recently-admitted sequence must park and later resume.
        let (mut s, plan) = scheduler(ServeConfig {
            max_in_flight: 2,
            kv_pages: 3,
            page_size: 2,
            arrival_window: 0,
            prefill_chunk: 4,
            admission: AdmissionMode::PagedUsage,
        });
        let a = s.submit(request(plan, 0, 2, 6, 61)).unwrap();
        let b = s.submit(request(plan, 0, 2, 6, 62)).unwrap();
        let mut completions = Vec::new();
        let mut preempted = Vec::new();
        let mut resumed = Vec::new();
        for _ in 0..64 {
            let r = s.tick().unwrap();
            s.assert_kv_invariants();
            preempted.extend(r.preempted);
            resumed.extend(r.resumed);
            completions.extend(r.completed);
            if s.is_idle() {
                break;
            }
        }
        assert!(s.is_idle());
        assert_eq!(preempted, vec![b], "the younger sequence is the victim");
        assert_eq!(resumed, vec![b]);
        assert!(s.preemption_events() >= 1);
        assert_eq!(completions.len(), 2);
        assert_eq!(completions[0].id, a);
        assert_eq!(completions[0].preemptions, 0);
        assert_eq!(completions[1].id, b);
        assert_eq!(completions[1].preemptions, 1);
        assert_eq!(s.kv_used_pages(), 0);
    }

    #[test]
    fn arrival_window_delays_admission() {
        let (mut s, plan) = scheduler(ServeConfig {
            arrival_window: 2,
            ..ServeConfig::default()
        });
        s.submit(request(plan, 0, 2, 2, 31)).unwrap();
        assert!(s.tick().unwrap().admitted.is_empty(), "tick 0: batching");
        assert!(s.tick().unwrap().admitted.is_empty(), "tick 1: batching");
        let r = s.tick().unwrap();
        assert_eq!(r.admitted.len(), 1, "tick 2: eligible");
    }

    #[test]
    fn strict_priority_with_fifo_within_a_class() {
        let (mut s, plan) = scheduler(ServeConfig {
            max_in_flight: 1,
            kv_pages: 8,
            page_size: 8,
            arrival_window: 0,
            prefill_chunk: 8,
            admission: AdmissionMode::PagedUsage,
        });
        let low_a = s.submit(request(plan, 3, 2, 2, 41)).unwrap();
        let low_b = s.submit(request(plan, 3, 2, 2, 42)).unwrap();
        let high = s.submit(request(plan, 0, 2, 2, 43)).unwrap();
        let mut order = Vec::new();
        for _ in 0..16 {
            order.extend(s.tick().unwrap().admitted);
            if s.is_idle() {
                break;
            }
        }
        assert_eq!(order, vec![high, low_a, low_b]);
    }

    #[test]
    fn cancel_pending_parked_and_in_flight() {
        // Same page-squeeze as the preemption test, plus a third pending
        // request, so all three cancel paths are exercised.
        let (mut s, plan) = scheduler(ServeConfig {
            max_in_flight: 2,
            kv_pages: 3,
            page_size: 2,
            arrival_window: 0,
            prefill_chunk: 4,
            admission: AdmissionMode::PagedUsage,
        });
        let a = s.submit(request(plan, 0, 2, 6, 51)).unwrap();
        let b = s.submit(request(plan, 0, 2, 6, 52)).unwrap();
        let c = s.submit(request(plan, 1, 2, 6, 53)).unwrap();
        // Tick until b is parked by the page squeeze.
        for _ in 0..16 {
            if s.parked_len() > 0 {
                break;
            }
            s.tick().unwrap();
        }
        assert_eq!(s.parked_len(), 1, "b parked under page pressure");
        assert!(s.cancel(c), "pending cancel");
        assert!(s.cancel(b), "parked cancel");
        assert!(s.cancel(a), "in-flight cancel");
        assert!(!s.cancel(a), "double cancel is a no-op");
        assert_eq!(s.kv_used_pages(), 0);
        assert!(s.is_idle());
        s.assert_kv_invariants();
    }

    #[test]
    fn debug_formats() {
        let (s, _) = scheduler(ServeConfig::default());
        assert!(format!("{s:?}").contains("Scheduler"));
    }
}
