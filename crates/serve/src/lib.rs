#![warn(missing_docs)]
//! # gpa-serve — continuous-batching serving on the attention engine
//!
//! The paper's kernels compute one sequence per launch; PR 3's geometry
//! refactor made one launch mix full squares, prefill-chunk windows, and
//! single decode rows. This crate adds the missing serving layer on top:
//! a **continuous-batching scheduler** ([`Scheduler`]) that owns an
//! [`gpa_core::AttentionEngine`], queues requests per priority class,
//! admits them under an explicit policy (arrival-batching window, max
//! in-flight sequences, block-paged KV over a [`gpa_core::PagePool`]),
//! and on every virtual-clock tick flattens *all* runnable work — each
//! prefilling sequence's next chunk plus each decoding sequence's next
//! token — into one batched launch per plan. That is the regime where
//! sparse serving wins: per-token launch overhead is paid once per tick,
//! not once per sequence, and block-sparse patterns keep the pool
//! saturated with mixed prefill/decode work.
//!
//! ## Paged KV: admission on usage, not worst case
//!
//! KV memory is a pool of fixed-size pages; a sequence holds exactly the
//! pages its cached tokens occupy, growing one page at a time as decode
//! appends cross page boundaries. Admission charges a sequence its
//! *current* page need ([`AdmissionMode::PagedUsage`]), not its
//! worst-case length — the difference is stark. Take 16-token prompts
//! with a 4096-token generation cap on a 4096-token pool (256 pages of
//! 16): worst-case reservation ([`AdmissionMode::WorstCaseReserve`])
//! charges each sequence all 256 pages at admission, so exactly **one**
//! runs while 255 pages sit idle; paged admission charges the one page
//! the prompt occupies, packing dozens of sequences into the same pool.
//! The price is oversubscription: when decode growth outruns the free
//! list, the scheduler **preempts** the lowest-priority, most-recently
//! admitted sequence — its pages are released and it parks on a resume
//! queue, continuing when pages free up. How its cache comes back is the
//! [`EvictionMode`]: **Recompute** (the default) re-extends the retained
//! K/V rows into a fresh cache, `O(context)` per resume but with zero
//! memory held while parked; **Swap** moves the evicted cache into a
//! host-side [`gpa_core::SwapArena`] and splices it back in `O(1)`,
//! holding the parked bytes (capped by [`ServeConfig::swap_bytes`]) in
//! exchange. Either way preempted-and-resumed sequences complete
//! **bitwise equal** to their uninterrupted runs — the modes never
//! differ in results or schedule — and the most urgent sequence is never
//! evicted, so the pool cannot livelock; `docs/SERVING.md` has the full
//! preemption/resume state machine.
//!
//! Everything is deterministic: time is a tick counter, admission order is
//! a pure function of (priority, submission order, fit), and batched
//! per-row work is identical to sequential per-sequence work — so every
//! completed sequence's output is **bitwise equal** to the naive
//! one-sequence-at-a-time serve ([`sequential_reference`]), a property
//! `tests/serving_sim.rs` checks across dozens of randomized seeded
//! traces along with the scheduler invariants (page conservation, no
//! page double-mapped, no starvation, FIFO within a priority class,
//! atomic rollback on launch failure).
//!
//! ## Example
//!
//! ```
//! use gpa_core::{AttentionEngine, AttentionKernel, AttentionPlan};
//! use gpa_serve::{
//!     generate_trace, replay, sequential_reference, AdmissionMode, ServeConfig, Scheduler,
//!     TraceSpec,
//! };
//!
//! // A scheduler owning its engine: admit at most 4 sequences into a
//! // paged KV pool of 32 pages × 8 tokens, prefill in chunks of 8
//! // query rows, admission charged on current page usage.
//! let mut scheduler: Scheduler<'static, f32> = Scheduler::new(
//!     AttentionEngine::with_threads(2),
//!     ServeConfig {
//!         max_in_flight: 4,
//!         kv_pages: 32,
//!         page_size: 8,
//!         arrival_window: 1,
//!         prefill_chunk: 8,
//!         admission: AdmissionMode::PagedUsage,
//!         // Preemption defaults: evict-and-recompute, no swap arena.
//!         ..ServeConfig::default()
//!     },
//! )
//! .unwrap();
//!
//! // One length-free plan serves every prefill chunk and decode row.
//! let plan = scheduler
//!     .register_plan(AttentionPlan::single(AttentionKernel::Local { n: 4 }).unwrap())
//!     .unwrap();
//!
//! // A seeded workload: 6 sequences, mixed prompt/decode lengths and
//! // arrival times, replayed on the scheduler's virtual clock.
//! let trace: Vec<gpa_serve::TraceEvent<f32>> = generate_trace(
//!     &TraceSpec {
//!         sequences: 6,
//!         prompt: (4, 12),
//!         decode: (0, 6),
//!         dk: 8,
//!         arrival_gap: (0, 2),
//!         priority_classes: 2,
//!         seed: 42,
//!     },
//!     &[plan],
//! );
//! let completions = replay(&mut scheduler, &trace, 10_000).unwrap();
//! assert_eq!(completions.len(), 6);
//!
//! // Continuous batching changes the schedule, never the numbers: each
//! // output is bitwise the naive one-sequence-at-a-time serve.
//! for c in &completions {
//!     let plan = c.target.plan().expect("a plan-only workload");
//!     let expect = sequential_reference(
//!         scheduler.engine(),
//!         scheduler.plan(plan),
//!         &trace[c.id.as_u64() as usize].request,
//!         scheduler.config().prefill_chunk,
//!     )
//!     .unwrap();
//!     assert_eq!(c.output, expect);
//! }
//! ```
//!
//! ## Decoder-model sequences
//!
//! A request can target a registered [`gpa_model::DecoderModel`] instead
//! of a bare plan ([`Scheduler::register_model`] +
//! [`Scheduler::submit_model`]): the sequence's embedding rows run through
//! the model's whole layer stack — heterogeneous Full/Sparse plans per
//! layer — with one KV cache per layer, every page of which is counted by
//! the same admission, preemption, and rollback arithmetic (an `L`-layer
//! sequence bills `L ×` the pages of a plan sequence of the same length).
//! Preempted model sequences keep their per-layer caches intact and
//! re-adopt them on resume, so completions remain bitwise equal to
//! [`sequential_model_reference`]. `examples/model_serving.rs` serves a
//! 12-layer bookend stack under page pressure.
//!
//! ## Content-adaptive patterns
//!
//! A plan request carries a [`PatternChoice`]: either a registered plan
//! named explicitly, or [`PatternChoice::Auto`], resolved once at
//! admission — the registered plans are ranked by
//! [`gpa_core::AttentionPlan::estimated_edges`] at the request's prompt
//! length, and the KV pool's free-page fraction indexes that ranking, so
//! a full pool affords the densest pattern while a starved pool forces
//! the sparsest. Registered plans may include content-routed kernels
//! ([`gpa_core::AttentionKernel::Routed`]): the router hashes each token
//! into one of `K` groups as a pure function of the routing spec and the
//! token's own query row, so a sequence's routing survives preemption,
//! resume, and any batching shape unchanged, and a tick that holds both
//! static and routed sequences still issues one launch per distinct plan.
//! The resolved plan is reported in [`Completion::target`] (the original
//! choice stays on the request), and completions — Auto, routed, or both
//! — remain bitwise equal to their per-plan [`sequential_reference`].
//! `examples/adaptive_serving.rs` walks this end to end, and
//! `cargo run -p gpa-bench --release --bin adaptive_sparsity` sweeps the
//! pattern × group-count × context-length trade-off surface.
//!
//! `examples/continuous_serving.rs` walks the same loop tick by tick, and
//! `cargo run -p gpa-bench --release --bin serving_throughput` measures
//! tokens/sec and latency percentiles against the sequential baseline as
//! offered load grows; `--bin model_serving` sweeps decoder-stack depth ×
//! layer pattern.

pub mod error;
pub mod request;
pub mod scheduler;
pub mod trace;

pub use error::ServeError;
pub use request::{
    Completion, ModelId, ModelRequest, PatternChoice, PlanId, RequestId, ServeRequest, ServeTarget,
    TickReport,
};
pub use scheduler::{AdmissionMode, EvictionMode, Scheduler, ServeConfig};
pub use trace::{
    generate_model_trace, generate_trace, replay, replay_mixed, sequential_model_reference,
    sequential_reference, ModelTraceEvent, TraceEvent, TraceSpec,
};
