#![warn(missing_docs)]
//! # gpa-serve — continuous-batching serving on the attention engine
//!
//! The paper's kernels compute one sequence per launch; PR 3's geometry
//! refactor made one launch mix full squares, prefill-chunk windows, and
//! single decode rows. This crate adds the missing serving layer on top:
//! a **continuous-batching scheduler** ([`Scheduler`]) that owns an
//! [`gpa_core::AttentionEngine`], queues requests per priority class,
//! admits them under an explicit policy (arrival-batching window, max
//! in-flight sequences, KV token budget over a [`gpa_core::SlotPool`]),
//! and on every virtual-clock tick flattens *all* runnable work — each
//! prefilling sequence's next chunk plus each decoding sequence's next
//! token — into one batched launch per plan. That is the regime where
//! sparse serving wins: per-token launch overhead is paid once per tick,
//! not once per sequence, and block-sparse patterns keep the pool
//! saturated with mixed prefill/decode work.
//!
//! Everything is deterministic: time is a tick counter, admission order is
//! a pure function of (priority, submission order, fit), and batched
//! per-row work is identical to sequential per-sequence work — so every
//! completed sequence's output is **bitwise equal** to the naive
//! one-sequence-at-a-time serve ([`sequential_reference`]), a property
//! `tests/serving_sim.rs` checks across dozens of randomized seeded
//! traces along with the scheduler invariants (KV budget never exceeded,
//! no starvation, FIFO within a priority class, atomic rollback on
//! launch failure).
//!
//! ## Example
//!
//! ```
//! use gpa_core::{AttentionEngine, AttentionKernel, AttentionPlan};
//! use gpa_serve::{
//!     generate_trace, replay, sequential_reference, ServeConfig, Scheduler, TraceSpec,
//! };
//!
//! // A scheduler owning its engine: admit at most 4 sequences into a
//! // 256-token KV budget, prefill in chunks of 8 query rows.
//! let mut scheduler: Scheduler<'static, f32> = Scheduler::new(
//!     AttentionEngine::with_threads(2),
//!     ServeConfig {
//!         max_in_flight: 4,
//!         kv_budget_tokens: 256,
//!         arrival_window: 1,
//!         prefill_chunk: 8,
//!     },
//! )
//! .unwrap();
//!
//! // One length-free plan serves every prefill chunk and decode row.
//! let plan = scheduler
//!     .register_plan(AttentionPlan::single(AttentionKernel::Local { n: 4 }).unwrap())
//!     .unwrap();
//!
//! // A seeded workload: 6 sequences, mixed prompt/decode lengths and
//! // arrival times, replayed on the scheduler's virtual clock.
//! let trace = generate_trace::<f32>(
//!     &TraceSpec {
//!         sequences: 6,
//!         prompt: (4, 12),
//!         decode: (0, 6),
//!         dk: 8,
//!         arrival_gap: (0, 2),
//!         priority_classes: 2,
//!         seed: 42,
//!     },
//!     &[plan],
//! );
//! let completions = replay(&mut scheduler, &trace, 10_000).unwrap();
//! assert_eq!(completions.len(), 6);
//!
//! // Continuous batching changes the schedule, never the numbers: each
//! // output is bitwise the naive one-sequence-at-a-time serve.
//! for c in &completions {
//!     let expect = sequential_reference(
//!         scheduler.engine(),
//!         scheduler.plan(c.plan),
//!         &trace[c.id.as_u64() as usize].request,
//!         scheduler.config().prefill_chunk,
//!     )
//!     .unwrap();
//!     assert_eq!(c.output, expect);
//! }
//! ```
//!
//! `examples/continuous_serving.rs` walks the same loop tick by tick, and
//! `cargo run -p gpa-bench --release --bin serving_throughput` measures
//! tokens/sec and latency percentiles against the sequential baseline as
//! offered load grows.

pub mod error;
pub mod request;
pub mod scheduler;
pub mod trace;

pub use error::ServeError;
pub use request::{Completion, PlanId, RequestId, ServeRequest, TickReport};
pub use scheduler::{Scheduler, ServeConfig};
pub use trace::{generate_trace, replay, sequential_reference, TraceEvent, TraceSpec};
