//! Criterion mirror of Fig. 5: dense FlashAttention vs the local kernel at
//! fixed window and fixed sparsity, over a small context ladder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpa_core::{flash_attention, local_attention, KernelOptions};
use gpa_masks::local_window_for_sparsity;
use gpa_parallel::ThreadPool;
use gpa_tensor::init::qkv;
use gpa_tensor::Matrix;
use std::time::Duration;

fn bench_fig5(c: &mut Criterion) {
    let dk = 64;
    let pool = ThreadPool::new(gpa_parallel::default_threads());
    let opts = KernelOptions::new();

    let mut group = c.benchmark_group("fig5_flash_vs_local");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for l in [2048usize, 4096] {
        let (q, k, v): (Matrix<f32>, _, _) = qkv(l, dk, 9);
        group.bench_with_input(BenchmarkId::new("FlashAttention", l), &l, |b, _| {
            b.iter(|| std::hint::black_box(flash_attention(&pool, &q, &k, &v, &opts).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("Local_window50", l), &l, |b, _| {
            b.iter(|| std::hint::black_box(local_attention(&pool, 50, &q, &k, &v, &opts).unwrap()));
        });
        let w = local_window_for_sparsity(l, 1e-2);
        group.bench_with_input(BenchmarkId::new("Local_sf1e-2", l), &l, |b, _| {
            b.iter(|| std::hint::black_box(local_attention(&pool, w, &q, &k, &v, &opts).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
