//! Criterion mirror of Fig. 5: dense FlashAttention vs the local kernel at
//! fixed window and fixed sparsity, over a small context ladder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpa_core::{AttentionEngine, AttentionKernel, AttentionPlan};
use gpa_masks::local_window_for_sparsity;
use gpa_tensor::init::qkv;
use gpa_tensor::Matrix;
use std::time::Duration;

fn bench_fig5(c: &mut Criterion) {
    let dk = 64;
    let engine = AttentionEngine::new();
    let flash_plan = AttentionPlan::single(AttentionKernel::Flash).unwrap();

    let mut group = c.benchmark_group("fig5_flash_vs_local");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for l in [2048usize, 4096] {
        let (q, k, v): (Matrix<f32>, _, _) = qkv(l, dk, 9);
        group.bench_with_input(BenchmarkId::new("FlashAttention", l), &l, |b, _| {
            b.iter(|| std::hint::black_box(engine.run(&flash_plan, &q, &k, &v).unwrap()));
        });
        let window_plan = AttentionPlan::single(AttentionKernel::Local { n: 50 }).unwrap();
        group.bench_with_input(BenchmarkId::new("Local_window50", l), &l, |b, _| {
            b.iter(|| std::hint::black_box(engine.run(&window_plan, &q, &k, &v).unwrap()));
        });
        let w = local_window_for_sparsity(l, 1e-2);
        let sf_plan = AttentionPlan::single(AttentionKernel::Local { n: w }).unwrap();
        group.bench_with_input(BenchmarkId::new("Local_sf1e-2", l), &l, |b, _| {
            b.iter(|| std::hint::black_box(engine.run(&sf_plan, &q, &k, &v).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
