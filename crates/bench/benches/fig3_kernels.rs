//! Criterion mirror of Fig. 3 at CI-friendly sizes: each kernel at three
//! sparsity levels, L = 1024, dk = 64.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpa_bench::{fitted_case, AlgoId};
use gpa_core::AttentionEngine;
use gpa_tensor::init::qkv;
use gpa_tensor::Matrix;
use std::time::Duration;

fn bench_fig3(c: &mut Criterion) {
    let l = 1024;
    let dk = 64;
    let engine = AttentionEngine::new();
    let (q, k, v): (Matrix<f32>, _, _) = qkv(l, dk, 7);

    let mut group = c.benchmark_group("fig3_kernels");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for sf in [0.1f64, 0.01, 0.001] {
        for algo in [
            AlgoId::Sdp,
            AlgoId::Csr,
            AlgoId::Local,
            AlgoId::Dilated1d,
            AlgoId::Dilated2d,
            AlgoId::Global,
        ] {
            let case = fitted_case(algo, l, sf);
            let plan = case.plan();
            group.bench_with_input(
                BenchmarkId::new(case.name(), format!("sf={sf}")),
                &sf,
                |b, _| {
                    b.iter(|| std::hint::black_box(engine.run(&plan, &q, &k, &v).unwrap()));
                },
            );
        }
        // COO only at the sparser points (paper restriction, same reason).
        if sf <= 0.1 {
            let case = fitted_case(AlgoId::Coo, l, sf);
            let plan = case.plan();
            group.bench_with_input(BenchmarkId::new("COO", format!("sf={sf}")), &sf, |b, _| {
                b.iter(|| std::hint::black_box(engine.run(&plan, &q, &k, &v).unwrap()));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
