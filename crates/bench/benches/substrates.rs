//! Substrate microbenchmarks: the building blocks under the kernels —
//! online softmax, sparse-format conversion, mask materialization, the
//! thread-pool launch overhead, the engine's batched launch vs N
//! sequential launches, and the dense matmul used by projections.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpa_core::{AttentionEngine, AttentionKernel, AttentionRequest};
use gpa_masks::{LocalWindow, MaskPattern};
use gpa_parallel::{parallel_for, Schedule, ThreadPool};
use gpa_sparse::CsrMask;
use gpa_tensor::init::{qkv, uniform_matrix};
use gpa_tensor::ops::matmul;
use gpa_tensor::softmax::{online_softmax_slice, softmax_slice};
use gpa_tensor::Matrix;
use std::time::Duration;

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));

    // Softmax: two-pass vs streaming.
    let scores: Vec<f32> = (0..4096).map(|i| ((i * 37) % 100) as f32 * 0.1).collect();
    let mut out = vec![0.0f32; scores.len()];
    group.bench_function("softmax_two_pass_4096", |b| {
        b.iter(|| softmax_slice(&scores, &mut out));
    });
    group.bench_function("softmax_online_4096", |b| {
        b.iter(|| online_softmax_slice(&scores, &mut out));
    });

    // Mask materialization and conversion.
    let pattern = LocalWindow::new(4096, 64);
    group.bench_function("mask_local_to_csr_L4096_w64", |b| {
        b.iter(|| std::hint::black_box(pattern.to_csr()));
    });
    let coo = pattern.to_coo();
    group.bench_function("coo_to_csr_conversion", |b| {
        b.iter(|| std::hint::black_box(CsrMask::from_coo(&coo)));
    });

    // Pool launch overhead at varying grain.
    let pool = ThreadPool::new(gpa_parallel::default_threads());
    for grain in [1usize, 4, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("parallel_for_noop_4096", grain),
            &grain,
            |b, &grain| {
                b.iter(|| {
                    parallel_for(&pool, 4096, Schedule::Dynamic { grain }, |range| {
                        std::hint::black_box(range.len());
                    })
                });
            },
        );
    }

    // Batched-launch overhead: N small sequences through one
    // `run_batch` (one flattened pool launch) vs N sequential `run` calls
    // (N launches). The gap is the per-launch overhead the batching API
    // amortizes for serving-style workloads.
    let engine = AttentionEngine::new();
    let plan = engine
        .compile(&[AttentionKernel::Local { n: 8 }])
        .expect("local plan compiles");
    let n_seqs = 16;
    let seqs: Vec<(Matrix<f32>, Matrix<f32>, Matrix<f32>)> =
        (0..n_seqs).map(|s| qkv(256, 32, 40 + s as u64)).collect();
    let requests: Vec<AttentionRequest<'_, f32>> = seqs
        .iter()
        .map(|(q, k, v)| AttentionRequest::new(q, k, v))
        .collect();
    group.bench_function("engine_batched_16x256", |b| {
        b.iter(|| std::hint::black_box(engine.run_batch(&plan, &requests).unwrap()));
    });
    group.bench_function("engine_sequential_16x256", |b| {
        b.iter(|| {
            for (q, k, v) in &seqs {
                std::hint::black_box(engine.run(&plan, q, k, v).unwrap());
            }
        });
    });
    // Dynamic-schedule grain sweep over the same batched launch — the data
    // behind the ROADMAP's "revisit the default grain" item.
    for grain in [4usize, 16, 64] {
        let opts = gpa_core::KernelOptions::new().with_schedule(Schedule::Dynamic { grain });
        group.bench_with_input(
            BenchmarkId::new("engine_batched_16x256_grain", grain),
            &grain,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(engine.run_batch_with(&plan, &opts, &requests).unwrap())
                });
            },
        );
    }

    // Score·V accumulation (the SDP baseline's second pass): blocked
    // weighted_rows vs folding one value row at a time.
    let weights: Matrix<f32> = uniform_matrix(256, 256, 3);
    let values: Matrix<f32> = uniform_matrix(256, 32, 4);
    group.bench_function("weighted_rows_256x256x32", |b| {
        b.iter(|| std::hint::black_box(gpa_tensor::ops::weighted_rows(&weights, &values)));
    });
    group.bench_function("weighted_rows_axpy_ref_256x256x32", |b| {
        b.iter(|| {
            let mut out: Matrix<f32> = Matrix::zeros(weights.rows(), values.cols());
            for i in 0..weights.rows() {
                let o = out.row_mut(i);
                let w = weights.row(i);
                for (j, &wj) in w.iter().enumerate() {
                    gpa_tensor::ops::axpy(o, wj, values.row(j));
                }
            }
            std::hint::black_box(out);
        });
    });

    // Projection matmul (multi-head layer building block).
    let a: Matrix<f32> = uniform_matrix(512, 256, 1);
    let bmat: Matrix<f32> = uniform_matrix(256, 256, 2);
    group.bench_function("matmul_512x256x256", |b| {
        b.iter(|| std::hint::black_box(matmul(&a, &bmat)));
    });

    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
