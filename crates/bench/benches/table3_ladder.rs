//! Criterion mirror of Table III: flash vs local vs CSR under the LongNet
//! sparsity schedule at two rungs of the ladder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpa_core::{csr_attention, flash_attention, local_attention, KernelOptions};
use gpa_masks::{local_window_for_sparsity, longnet_sparsity_factor, LocalWindow, MaskPattern};
use gpa_parallel::ThreadPool;
use gpa_tensor::init::qkv;
use gpa_tensor::Matrix;
use std::time::Duration;

fn bench_table3(c: &mut Criterion) {
    let dk = 64;
    let pool = ThreadPool::new(gpa_parallel::default_threads());
    let opts = KernelOptions::new();

    let mut group = c.benchmark_group("table3_ladder");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    for l in [4096usize, 8192] {
        let (q, k, v): (Matrix<f32>, _, _) = qkv(l, dk, 13);
        let sf = longnet_sparsity_factor(l);
        let window = local_window_for_sparsity(l, sf);
        let mask = LocalWindow::new(l, window).to_csr();

        group.bench_with_input(BenchmarkId::new("FlashAttention", l), &l, |b, _| {
            b.iter(|| std::hint::black_box(flash_attention(&pool, &q, &k, &v, &opts).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("Local_longnet_sf", l), &l, |b, _| {
            b.iter(|| {
                std::hint::black_box(local_attention(&pool, window, &q, &k, &v, &opts).unwrap())
            });
        });
        group.bench_with_input(BenchmarkId::new("CSR_longnet_sf", l), &l, |b, _| {
            b.iter(|| {
                std::hint::black_box(csr_attention(&pool, &mask, &q, &k, &v, &opts).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
