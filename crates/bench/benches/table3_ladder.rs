//! Criterion mirror of Table III: flash vs local vs CSR under the LongNet
//! sparsity schedule at two rungs of the ladder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpa_core::{AttentionEngine, AttentionKernel, AttentionPlan};
use gpa_masks::{local_window_for_sparsity, longnet_sparsity_factor, LocalWindow, MaskPattern};
use gpa_tensor::init::qkv;
use gpa_tensor::Matrix;
use std::time::Duration;

fn bench_table3(c: &mut Criterion) {
    let dk = 64;
    let engine = AttentionEngine::new();
    let flash_plan = AttentionPlan::single(AttentionKernel::Flash).unwrap();

    let mut group = c.benchmark_group("table3_ladder");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    for l in [4096usize, 8192] {
        let (q, k, v): (Matrix<f32>, _, _) = qkv(l, dk, 13);
        let sf = longnet_sparsity_factor(l);
        let window = local_window_for_sparsity(l, sf);
        let mask = LocalWindow::new(l, window).to_csr();

        group.bench_with_input(BenchmarkId::new("FlashAttention", l), &l, |b, _| {
            b.iter(|| std::hint::black_box(engine.run(&flash_plan, &q, &k, &v).unwrap()));
        });
        let local_plan = AttentionPlan::single(AttentionKernel::Local { n: window }).unwrap();
        group.bench_with_input(BenchmarkId::new("Local_longnet_sf", l), &l, |b, _| {
            b.iter(|| std::hint::black_box(engine.run(&local_plan, &q, &k, &v).unwrap()));
        });
        let csr_plan = AttentionPlan::single(AttentionKernel::Csr(&mask)).unwrap();
        group.bench_with_input(BenchmarkId::new("CSR_longnet_sf", l), &l, |b, _| {
            b.iter(|| std::hint::black_box(engine.run(&csr_plan, &q, &k, &v).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
