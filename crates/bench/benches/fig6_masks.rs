//! Criterion mirror of Fig. 6: the Longformer mask as masked SDP vs the
//! Loc ∘ Glo composition vs a single CSR call, at L = 4096.

use criterion::{criterion_group, criterion_main, Criterion};
use gpa_core::{AttentionEngine, AttentionKernel};
use gpa_masks::{longformer, GlobalSet, MaskPattern};
use gpa_sparse::DenseMask;
use gpa_tensor::init::qkv;
use gpa_tensor::Matrix;
use std::time::Duration;

fn bench_fig6(c: &mut Criterion) {
    let l = 4096;
    let dk = 64;
    let window = 50;
    let engine = AttentionEngine::new();
    let (q, k, v): (Matrix<f32>, _, _) = qkv(l, dk, 11);

    let globals = GlobalSet::evenly_spaced(l, 3);
    let gi: Vec<usize> = globals.indices().iter().map(|&g| g as usize).collect();
    let union = longformer(l, window, gi).to_csr();
    let dense = DenseMask::from_csr(&union);

    let mut group = c.benchmark_group("fig6_longformer");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    let sdp_plan = engine
        .compile(&[AttentionKernel::SdpMasked(&dense)])
        .unwrap();
    group.bench_function("SDP_masked", |b| {
        b.iter(|| std::hint::black_box(engine.run(&sdp_plan, &q, &k, &v).unwrap()));
    });
    let composed_plan = engine
        .compile(&[
            AttentionKernel::Local { n: window },
            AttentionKernel::Global {
                globals: &globals,
                n_sub: window,
            },
        ])
        .unwrap();
    group.bench_function("Loc_then_Glo", |b| {
        b.iter(|| std::hint::black_box(engine.run(&composed_plan, &q, &k, &v).unwrap()));
    });
    let csr_plan = engine.compile(&[AttentionKernel::Csr(&union)]).unwrap();
    group.bench_function("CSR_union", |b| {
        b.iter(|| std::hint::black_box(engine.run(&csr_plan, &q, &k, &v).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
