//! Substrate overhead: per-launch cost of the work-stealing pool and the
//! engine's batched dispatch, swept over `Schedule::Dynamic` grains.
//!
//! ```text
//! cargo run -p gpa-bench --release --bin substrates [--quick]
//! ```

use gpa_bench::experiments::{best_noop_grain, run_substrates, SubstratesConfig};
use gpa_bench::{ascii_table, fmt_count, fmt_seconds, write_csv, Args, HostInfo};

fn main() {
    let args = Args::from_env();
    let pool = args.make_pool();
    let engine = args.make_engine();
    let cfg = SubstratesConfig::for_scale(args.scale);

    println!(
        "Substrate overhead on {} ({} workers)\n",
        HostInfo::detect().summary(),
        pool.threads()
    );

    let (records, counters) = run_substrates(&pool, &engine, &cfg, |r| {
        eprintln!("  measured {:<24} -> {}", r.algo, fmt_seconds(r.mean_s));
    });

    for (prefix, title) in [
        (
            "noop",
            format!("Pool launch overhead (empty body over {} rows)", cfg.n),
        ),
        (
            "engine",
            format!(
                "Engine batched launch ({} seqs × {} tokens)",
                cfg.n_seqs, cfg.seq_len
            ),
        ),
    ] {
        let rows: Vec<Vec<String>> = records
            .iter()
            .filter(|r| r.algo.starts_with(prefix))
            .map(|r| {
                vec![
                    r.algo.clone(),
                    fmt_seconds(r.mean_s),
                    fmt_seconds(r.min_s),
                    format!("{} iters", r.iters),
                ]
            })
            .collect();
        println!("\n{title}:");
        print!(
            "{}",
            ascii_table(&["case", "mean", "min", "samples"], &rows)
        );
    }

    if let Some((grain, mean)) = best_noop_grain(&records) {
        println!(
            "\nbest dynamic grain on this host: {grain} ({} per launch)",
            fmt_seconds(mean)
        );
    }
    println!(
        "noop-sweep substrate counters: {} jobs, {} injector pushes, {} deque steals / {} probes, {} range steals, {} parks",
        fmt_count(counters.jobs_executed),
        fmt_count(counters.injector_pushes),
        fmt_count(counters.steals),
        fmt_count(counters.steal_attempts),
        fmt_count(counters.range_steals),
        fmt_count(counters.parks),
    );

    match write_csv(&args.out_dir, "substrates", &records) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write CSV: {e}"),
    }
}
