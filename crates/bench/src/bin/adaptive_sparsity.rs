//! Adaptive-sparsity trade-off surface — dense vs static-sparse vs
//! content-routed attention across pattern × group count × context length,
//! with measured work, tokens/sec, and working-set memory per point.
//!
//! ```text
//! cargo run -p gpa-bench --release --bin adaptive_sparsity [--quick|--paper]
//! ```

use gpa_bench::experiments::{run_adaptive, AdaptiveConfig};
use gpa_bench::{ascii_table, fmt_seconds, write_csv, Args, HostInfo};
use gpa_core::AttentionEngine;

fn main() {
    let args = Args::from_env();
    // The surface's work axis is *measured*, so this bin always builds a
    // counting engine instead of `args.make_engine()`.
    let engine = AttentionEngine::builder()
        .threads(args.threads.unwrap_or_else(gpa_parallel::default_threads))
        .count_work(true)
        .build();
    let mut cfg = AdaptiveConfig::for_scale(args.scale);
    cfg.seed = args.seed;

    println!(
        "Adaptive sparsity — routed block-diagonal vs dense/static on {}\n",
        HostInfo::detect().summary()
    );

    let records = run_adaptive(&engine, &cfg, |r| {
        eprintln!(
            "  measured {:<18} L={:<8} -> {} ({:.0} tok/s) {}",
            r.algo,
            r.l,
            fmt_seconds(r.mean_s),
            r.l as f64 / r.mean_s,
            r.note
        );
    });

    // Pattern (rows) × context length (columns), cells "time / work-frac".
    let mut series: Vec<&str> = Vec::new();
    for r in &records {
        if !series.contains(&r.algo.as_str()) {
            series.push(r.algo.as_str());
        }
    }
    let mut headers = vec!["pattern".to_string()];
    headers.extend(cfg.ls.iter().map(|l| format!("L={l}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|&name| {
            let mut row = vec![name.to_string()];
            for &l in &cfg.ls {
                let cell = records
                    .iter()
                    .find(|r| r.algo == name && r.l == l)
                    .map(|r| format!("{} / {:.4}", fmt_seconds(r.mean_s), r.sf_achieved))
                    .unwrap_or_else(|| "—".into());
                row.push(cell);
            }
            row
        })
        .collect();
    print!("{}", ascii_table(&header_refs, &rows));
    println!("(cell: mean time / measured work as a fraction of dense L²)");

    match write_csv(&args.out_dir, "adaptive", &records) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write CSV: {e}"),
    }
}
