//! Table I — system inventory: the paper's three GPU systems (as memory
//! budgets for the capacity model) and the host this reproduction's
//! runtime numbers come from.

use gpa_bench::{ascii_table, Args, HostInfo};
use gpa_memmodel::DeviceProfile;

fn main() {
    let args = Args::from_env();
    let host = HostInfo::detect();

    println!("Table I — systems\n");
    let rows: Vec<Vec<String>> = DeviceProfile::paper_devices()
        .iter()
        .map(|d| {
            vec![
                d.name.to_string(),
                format!("{:.0} GiB", d.mem_bytes as f64 / (1u64 << 30) as f64),
                "capacity model (Fig. 4, Table II)".to_string(),
            ]
        })
        .chain(std::iter::once(vec![
            host.summary(),
            "host RAM".to_string(),
            "runtime benches (Figs. 3, 5, 6; Table III)".to_string(),
        ]))
        .collect();
    print!("{}", ascii_table(&["system", "memory", "used for"], &rows));
    println!(
        "\nworkers: {} threads (override with --threads or GPA_THREADS)",
        args.threads.unwrap_or_else(gpa_parallel::default_threads)
    );
    println!(
        "substitution note: runtime experiments execute on the host CPU via the\n\
         gpa-parallel grid simulator; see DESIGN.md §1."
    );
}
