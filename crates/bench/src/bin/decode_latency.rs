//! Decode latency — per-token KV-cached decode cost (tokens/sec) vs
//! context length for each sparse kernel family.
//!
//! ```text
//! cargo run -p gpa-bench --release --bin decode_latency [--quick|--paper]
//! ```

use gpa_bench::experiments::{run_decode, DecodeConfig};
use gpa_bench::{ascii_table, fmt_seconds, write_csv, Args, HostInfo};

fn main() {
    let args = Args::from_env();
    let engine = args.make_engine();
    let mut cfg = DecodeConfig::for_scale(args.scale);
    cfg.seed = args.seed;

    println!(
        "Decode latency — KV-cached per-token cost on {}",
        HostInfo::detect().summary()
    );
    println!(
        "context lengths {:?}, dk = {}, window = {}, {}+{} steps per point\n",
        cfg.context_lengths, cfg.dk, cfg.window, cfg.warmup_steps, cfg.timed_steps
    );

    let records = run_decode(&engine, &cfg, |r| {
        eprintln!(
            "  measured {:<12} L={:<8} -> {} per token ({})",
            r.algo,
            r.l,
            fmt_seconds(r.mean_s),
            r.note.split(';').next().unwrap_or(""),
        );
    });

    // Kernel × context length → tokens/sec (the serving-facing number).
    let mut headers = vec!["kernel".to_string()];
    headers.extend(cfg.context_lengths.iter().map(|l| format!("L={l}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let algos: Vec<&str> = {
        let mut seen = Vec::new();
        for r in &records {
            if !seen.contains(&r.algo.as_str()) {
                seen.push(r.algo.as_str());
            }
        }
        seen
    };
    let rows: Vec<Vec<String>> = algos
        .iter()
        .map(|&algo| {
            let mut row = vec![algo.to_string()];
            for &l in &cfg.context_lengths {
                let cell = records
                    .iter()
                    .find(|r| r.algo == algo && r.l == l)
                    .map(|r| format!("{:.0} tok/s", 1.0 / r.mean_s))
                    .unwrap_or_else(|| "—".into());
                row.push(cell);
            }
            row
        })
        .collect();
    println!("\n{}", ascii_table(&header_refs, &rows));

    match write_csv(&args.out_dir, "decode", &records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write CSV: {e}"),
    }
}
