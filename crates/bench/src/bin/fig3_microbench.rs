//! Fig. 3 — microbenchmark sweep: six graph kernels + masked SDP across
//! context length, embedding dimension, and sparsity factor.
//!
//! ```text
//! cargo run -p gpa-bench --release --bin fig3_microbench [--quick|--paper]
//! ```

use gpa_bench::experiments::{run_fig3, Fig3Config};
use gpa_bench::{ascii_table, fmt_seconds, write_csv, Args, HostInfo};

fn main() {
    let args = Args::from_env();
    let engine = args.make_engine();
    let mut cfg = Fig3Config::for_scale(args.scale);
    cfg.seed = args.seed;

    println!(
        "Fig. 3 — microbenchmarks on {}",
        HostInfo::detect().summary()
    );
    println!(
        "L = {:?}, dk = {:?}, {} sparsity points; protocol {:?}\n",
        cfg.ls,
        cfg.dks,
        cfg.sfs.len(),
        cfg.protocol
    );

    let records = run_fig3(&engine, &cfg, |r| {
        eprintln!(
            "  measured {:<22} L={:<6} dk={:<4} Sf={:<8.1e} -> {}",
            r.algo,
            r.l,
            r.dk,
            r.sf_target,
            fmt_seconds(r.mean_s)
        );
    });

    // One table per (L, dk): algorithms × sparsity (the paper's panels).
    for &l in &cfg.ls {
        for &dk in &cfg.dks {
            let mut headers = vec!["algo".to_string()];
            headers.extend(cfg.sfs.iter().map(|sf| format!("Sf={sf:.0e}")));
            let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
            let algos: Vec<&str> = {
                let mut seen = Vec::new();
                for r in records.iter().filter(|r| r.l == l && r.dk == dk) {
                    if !seen.contains(&r.algo.as_str()) {
                        seen.push(r.algo.as_str());
                    }
                }
                seen
            };
            let rows: Vec<Vec<String>> = algos
                .iter()
                .map(|&algo| {
                    let mut row = vec![algo.to_string()];
                    for &sf in &cfg.sfs {
                        let cell = records
                            .iter()
                            .find(|r| {
                                r.l == l
                                    && r.dk == dk
                                    && r.algo == algo
                                    && (r.sf_target - sf).abs() < 1e-15
                            })
                            .map(|r| fmt_seconds(r.mean_s))
                            .unwrap_or_else(|| "—".into());
                        row.push(cell);
                    }
                    row
                })
                .collect();
            println!("\nL = {l}, dk = {dk} (mean runtime)");
            print!("{}", ascii_table(&header_refs, &rows));
        }
    }

    match write_csv(&args.out_dir, "fig3", &records) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write CSV: {e}"),
    }
}
