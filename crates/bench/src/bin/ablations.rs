//! Ablation studies A1–A4 (DESIGN.md §3): COO search strategy, block
//! scheduling under load imbalance, flash tile size, and generic-vs-
//! specialized neighbor enumeration.
//!
//! ```text
//! cargo run -p gpa-bench --release --bin ablations [--quick]
//! ```

use gpa_bench::experiments::{run_ablations, AblationConfig};
use gpa_bench::{ascii_table, fmt_seconds, write_csv, Args, HostInfo};

fn main() {
    let args = Args::from_env();
    let engine = args.make_engine();
    let cfg = AblationConfig::for_scale(args.scale);

    println!("Ablations A1–A4 on {}\n", HostInfo::detect().summary());

    let records = run_ablations(&engine, &cfg, |r| {
        eprintln!(
            "  measured {:<32} [{}] -> {}",
            r.algo,
            r.experiment,
            fmt_seconds(r.mean_s)
        );
    });

    for (exp, title) in [
        (
            "ablation_a1",
            "A1 — COO row-bound search (linear = paper, binary = fix)",
        ),
        (
            "ablation_a2",
            "A2 — scheduling on the imbalanced global mask",
        ),
        ("ablation_a3", "A3 — FlashAttention K/V tile size"),
        (
            "ablation_a4",
            "A4 — generic pattern driver vs specialized kernel",
        ),
    ] {
        let rows: Vec<Vec<String>> = records
            .iter()
            .filter(|r| r.experiment == exp)
            .map(|r| {
                vec![
                    r.algo.clone(),
                    format!("L={}", r.l),
                    if r.sf_target.is_nan() {
                        "—".into()
                    } else {
                        format!("Sf={:.0e}", r.sf_target)
                    },
                    fmt_seconds(r.mean_s),
                    r.note.clone(),
                ]
            })
            .collect();
        println!("\n{title}:");
        print!(
            "{}",
            ascii_table(&["variant", "L", "Sf", "mean runtime", "note"], &rows)
        );
    }

    match write_csv(&args.out_dir, "ablations", &records) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write CSV: {e}"),
    }
}
