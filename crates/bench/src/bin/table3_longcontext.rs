//! Table III — long-context runtimes under the LongNet sparsity schedule
//! (`Sf = 2730/L`): FlashAttention vs Local vs CSR.
//!
//! ```text
//! cargo run -p gpa-bench --release --bin table3_longcontext [--quick|--paper]
//! ```

use gpa_bench::experiments::{run_table3, Table3Config};
use gpa_bench::{ascii_table, fmt_seconds, speedup, write_csv, Args, HostInfo};

fn main() {
    let args = Args::from_env();
    let engine = args.make_engine();
    let mut cfg = Table3Config::for_scale(args.scale);
    cfg.seed = args.seed;

    println!(
        "Table III — long-context ladder on {} (LongNet schedule Sf = 2730/L)\n",
        HostInfo::detect().summary()
    );

    let records = run_table3(&engine, &cfg, |r| {
        eprintln!(
            "  measured {:<16} L={:<9} -> {} {}",
            r.algo,
            r.l,
            fmt_seconds(r.mean_s),
            r.note
        );
    });

    let mut rows = Vec::new();
    for &l in &cfg.ls {
        let flash = records
            .iter()
            .find(|r| r.l == l && r.algo == "FlashAttention")
            .unwrap();
        for algo in ["FlashAttention", "Local", "CSR"] {
            let r = records.iter().find(|r| r.l == l && r.algo == algo).unwrap();
            rows.push(vec![
                if algo == "FlashAttention" {
                    format!("{l}")
                } else {
                    String::new()
                },
                r.algo.clone(),
                if r.sf_target.is_nan() {
                    "—".into()
                } else {
                    format!("{:.1e}", r.sf_achieved)
                },
                fmt_seconds(r.mean_s),
                format!("{:.2}x", speedup(flash.mean_s, r.mean_s)),
                r.note.clone(),
            ]);
        }
    }
    print!(
        "{}",
        ascii_table(
            &[
                "L",
                "algorithm",
                "Sf",
                "mean runtime",
                "speedup vs Flash",
                "note"
            ],
            &rows
        )
    );

    match write_csv(&args.out_dir, "table3", &records) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write CSV: {e}"),
    }
}
