//! Fig. 6 — Longformer and BigBird masks: masked SDP vs sequential kernel
//! composition vs a single CSR call.
//!
//! ```text
//! cargo run -p gpa-bench --release --bin fig6_popular_masks [--quick|--paper]
//! ```

use gpa_bench::experiments::fig6::Fig6Mask;
use gpa_bench::experiments::{run_fig6, Fig6Config};
use gpa_bench::{ascii_table, fmt_seconds, write_csv, Args, HostInfo};

fn main() {
    let args = Args::from_env();
    let engine = args.make_engine();
    let mut cfg = Fig6Config::for_scale(args.scale);
    cfg.seed = args.seed;

    println!(
        "Fig. 6 — popular attention masks on {}\n(window {}, {} globals, dilation {}, random Sf {})\n",
        HostInfo::detect().summary(),
        cfg.window,
        cfg.n_globals,
        cfg.dilation,
        cfg.random_sf
    );

    let records = run_fig6(&engine, &cfg, |r| {
        eprintln!(
            "  measured {:<16} [{}] L={:<7} -> {}",
            r.algo,
            r.note,
            r.l,
            fmt_seconds(r.mean_s)
        );
    });

    for mask in Fig6Mask::ALL {
        let label = mask.label();
        let mut series: Vec<&str> = Vec::new();
        for r in records.iter().filter(|r| r.note == label) {
            if !series.contains(&r.algo.as_str()) {
                series.push(r.algo.as_str());
            }
        }
        let mut headers = vec!["series".to_string()];
        headers.extend(cfg.ls.iter().map(|l| format!("L={l}")));
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let rows: Vec<Vec<String>> = series
            .iter()
            .map(|&name| {
                let mut row = vec![name.to_string()];
                for &l in &cfg.ls {
                    let cell = records
                        .iter()
                        .find(|r| r.note == label && r.algo == name && r.l == l)
                        .map(|r| fmt_seconds(r.mean_s))
                        .unwrap_or_else(|| "—".into());
                    row.push(cell);
                }
                row
            })
            .collect();
        println!("\n{label}:");
        print!("{}", ascii_table(&header_refs, &rows));
    }

    match write_csv(&args.out_dir, "fig6", &records) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write CSV: {e}"),
    }
}
