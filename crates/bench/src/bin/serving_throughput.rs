//! Serving throughput — continuous batching vs one-sequence-at-a-time:
//! tokens/sec and tick-latency percentiles (p50/p99) vs offered load,
//! plus a page-pressure sweep (offered load × page budget) reporting
//! admitted-vs-rejected counts and preemption totals.
//!
//! ```text
//! cargo run -p gpa-bench --release --bin serving_throughput [--quick|--paper]
//! ```

use gpa_bench::experiments::{run_serving, ServingConfig};
use gpa_bench::{ascii_table, fmt_seconds, write_csv, Args, HostInfo};

fn main() {
    let args = Args::from_env();
    let mut cfg = ServingConfig::for_scale(args.scale);
    cfg.seed = args.seed;

    println!(
        "Serving throughput — continuous batching vs sequential on {}",
        HostInfo::detect().summary()
    );
    println!(
        "{} sequences per point, prompts {:?}, decode {:?}, dk = {}, window = {}, \
         chunk = {}, ≤{} in flight, {} pages × {} tokens KV pool \
         (pressure budgets {:?})\n",
        cfg.sequences,
        cfg.prompt,
        cfg.decode,
        cfg.dk,
        cfg.window,
        cfg.prefill_chunk,
        cfg.max_in_flight,
        cfg.kv_pages,
        cfg.page_size,
        cfg.page_budgets
    );

    let records = run_serving(args.threads, &cfg, |r| {
        eprintln!(
            "  measured {:<10} gap={:<4} -> {} per {} ({})",
            r.algo,
            r.sf_target,
            fmt_seconds(r.mean_s),
            if r.algo == "Continuous" {
                "tick"
            } else {
                "sequence"
            },
            r.note,
        );
    });

    let field = |note: &str, tag: &str| {
        note.split("; ")
            .find_map(|kv| kv.strip_prefix(tag).map(str::to_owned))
            .unwrap_or_else(|| "—".into())
    };

    // Offered load × algo → mean launch-unit time and latency percentiles.
    let headers = ["arrival gap", "algo", "mean", "p50 latency", "p99 latency"];
    let rows: Vec<Vec<String>> = records
        .iter()
        .filter(|r| r.algo == "Continuous" || r.algo == "Sequential")
        .map(|r| {
            let pct = |tag: &str| {
                let v = field(&r.note, tag);
                if v == "—" {
                    v
                } else {
                    format!("{v} ticks")
                }
            };
            vec![
                format!("{:.0}", r.sf_target),
                r.algo.clone(),
                fmt_seconds(r.mean_s),
                pct("p50t="),
                pct("p99t="),
            ]
        })
        .collect();
    println!("\n{}", ascii_table(&headers, &rows));

    // Offered load × page budget → admission and preemption outcomes.
    let headers = [
        "arrival gap",
        "page budget",
        "admitted",
        "rejected",
        "preemptions",
        "mean tick",
    ];
    let rows: Vec<Vec<String>> = records
        .iter()
        .filter(|r| r.algo == "PagePressure")
        .map(|r| {
            vec![
                format!("{:.0}", r.sf_target),
                field(&r.note, "pages="),
                field(&r.note, "adm="),
                field(&r.note, "rej="),
                field(&r.note, "pre="),
                fmt_seconds(r.mean_s),
            ]
        })
        .collect();
    println!("\n{}", ascii_table(&headers, &rows));

    // Context length × eviction mode → resume-tick latency: Recompute
    // grows with L, Swap stays flat.
    let headers = ["resume L", "eviction", "resume tick", "min", "max"];
    let rows: Vec<Vec<String>> = records
        .iter()
        .filter(|r| r.algo.starts_with("Resume"))
        .map(|r| {
            vec![
                r.l.to_string(),
                r.algo.trim_start_matches("Resume").to_string(),
                fmt_seconds(r.mean_s),
                fmt_seconds(r.min_s),
                fmt_seconds(r.max_s),
            ]
        })
        .collect();
    println!("\n{}", ascii_table(&headers, &rows));

    match write_csv(&args.out_dir, "serving", &records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write CSV: {e}"),
    }
}
