//! Fig. 4 + Table II — theoretical context-length limits from the
//! accelerator memory model (analytic; runs in milliseconds at any scale).
//!
//! ```text
//! cargo run -p gpa-bench --release --bin fig4_table2_memlimits
//! ```

use gpa_bench::{ascii_table, fmt_count, Args};
use gpa_memmodel::{
    fig4_all_panels, sparsity_grid, table2_row, Accounting, MemAlgorithm, A100_80GB, TABLE2_ROWS,
};
use std::io::Write as _;

fn main() {
    let args = Args::from_env();

    // ---- Table II: ours (paper-calibrated + principled) vs paper --------
    println!(
        "Table II — max context length on one {} at Sf = 1e-4\n",
        A100_80GB.name
    );
    for spec in &TABLE2_ROWS {
        let calibrated = table2_row(spec, Accounting::PaperCalibrated);
        let principled = table2_row(spec, Accounting::Principled);
        println!(
            "{} dk={} heads={}:",
            spec.dtype.label(),
            spec.d_total,
            spec.heads
        );
        let rows: Vec<Vec<String>> = calibrated
            .iter()
            .zip(principled.iter())
            .map(|(c, p)| {
                let fmt = |v: Option<u64>| v.map(fmt_count).unwrap_or_else(|| "Unsupported".into());
                let err = c
                    .relative_error()
                    .map(|e| format!("{:.2}%", e * 100.0))
                    .unwrap_or_else(|| "—".into());
                vec![
                    c.algo.label().to_string(),
                    fmt(c.paper),
                    fmt(c.ours),
                    err,
                    fmt(p.ours),
                ]
            })
            .collect();
        print!(
            "{}",
            ascii_table(
                &[
                    "algorithm",
                    "paper",
                    "calibrated model",
                    "rel err",
                    "principled (this repo)"
                ],
                &rows
            )
        );
        println!();
    }

    // ---- Fig. 4: capacity curves ----------------------------------------
    let sfs = sparsity_grid(8);
    let panels = fig4_all_panels(&A100_80GB, Accounting::PaperCalibrated, &sfs);

    std::fs::create_dir_all(&args.out_dir).expect("create output dir");
    let path = args.out_dir.join("fig4.csv");
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path).expect("create fig4.csv"));
    writeln!(file, "dtype,dk,algo,sf,max_context_length").unwrap();
    for panel in &panels {
        for series in &panel.series {
            for (sf, max_l) in &series.points {
                writeln!(
                    file,
                    "{},{},{},{:.6e},{}",
                    panel.dtype.label(),
                    panel.d_total,
                    series.algo.label(),
                    sf,
                    max_l.map(|l| l.to_string()).unwrap_or_default()
                )
                .unwrap();
            }
        }
    }
    drop(file);
    println!(
        "Fig. 4 curves ({} panels × {} algorithms × {} sparsity points)",
        panels.len(),
        MemAlgorithm::ALL.len(),
        sfs.len()
    );

    // Compact preview of one panel (FP16, dk = 64 — the paper's headline).
    let panel = panels
        .iter()
        .find(|p| p.d_total == 64 && p.dtype.label() == "FP16")
        .expect("FP16/64 panel");
    let preview_sfs = [1e-4, 1e-3, 1e-2, 1e-1, 1.0];
    let mut headers = vec!["algo".to_string()];
    headers.extend(preview_sfs.iter().map(|sf| format!("Sf={sf:.0e}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = panel
        .series
        .iter()
        .map(|s| {
            let mut row = vec![s.algo.label().to_string()];
            for &sf in &preview_sfs {
                let cell = s
                    .points
                    .iter()
                    .min_by(|a, b| (a.0 - sf).abs().partial_cmp(&(b.0 - sf).abs()).unwrap())
                    .and_then(|(_, l)| *l)
                    .map(fmt_count)
                    .unwrap_or_else(|| "Unsupported".into());
                row.push(cell);
            }
            row
        })
        .collect();
    println!("\nFP16, dk = 64 preview (max L):");
    print!("{}", ascii_table(&header_refs, &rows));
    println!("\nwrote {}", path.display());
}
