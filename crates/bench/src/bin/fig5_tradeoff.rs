//! Fig. 5 — FlashAttention vs local attention with constant window (left)
//! and constant sparsity (right) as context length grows.
//!
//! ```text
//! cargo run -p gpa-bench --release --bin fig5_tradeoff [--quick|--paper]
//! ```

use gpa_bench::experiments::{run_fig5, Fig5Config};
use gpa_bench::{ascii_table, fmt_seconds, write_csv, Args, HostInfo};

fn main() {
    let args = Args::from_env();
    let engine = args.make_engine();
    let mut cfg = Fig5Config::for_scale(args.scale);
    cfg.seed = args.seed;

    println!(
        "Fig. 5 — FlashAttention vs Local on {}\n",
        HostInfo::detect().summary()
    );

    let records = run_fig5(&engine, &cfg, |r| {
        eprintln!(
            "  measured {:<22} L={:<8} -> {} {}",
            r.algo,
            r.l,
            fmt_seconds(r.mean_s),
            r.note
        );
    });

    // Series (rows) × context length (columns), like the paper's panels.
    let mut series: Vec<&str> = Vec::new();
    for r in &records {
        if !series.contains(&r.algo.as_str()) {
            series.push(r.algo.as_str());
        }
    }
    let mut headers = vec!["series".to_string()];
    headers.extend(cfg.ls.iter().map(|l| format!("L={l}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|&name| {
            let mut row = vec![name.to_string()];
            for &l in &cfg.ls {
                let cell = records
                    .iter()
                    .find(|r| r.algo == name && r.l == l)
                    .map(|r| {
                        let mut s = fmt_seconds(r.mean_s);
                        if r.note.contains("estimated") {
                            s.push('*');
                        }
                        s
                    })
                    .unwrap_or_else(|| "—".into());
                row.push(cell);
            }
            row
        })
        .collect();
    print!("{}", ascii_table(&header_refs, &rows));
    println!("(*: extrapolated from the largest measured dense run via O(L^2))");

    match write_csv(&args.out_dir, "fig5", &records) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write CSV: {e}"),
    }
}
