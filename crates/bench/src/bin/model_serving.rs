//! Decoder-stack serving — layer count × layer pattern (all-full vs
//! bookend vs interlaced): tokens/sec, tick-latency percentiles, and
//! whole-stack preemption totals, continuous batching over full
//! multi-layer models.
//!
//! ```text
//! cargo run -p gpa-bench --release --bin model_serving [--quick|--paper]
//! ```

use gpa_bench::experiments::{run_model, ModelConfig};
use gpa_bench::{ascii_table, fmt_seconds, write_csv, Args, HostInfo};

fn main() {
    let args = Args::from_env();
    let mut cfg = ModelConfig::for_scale(args.scale);
    cfg.seed = args.seed;

    println!(
        "Decoder-stack serving — layer pattern sweep on {}",
        HostInfo::detect().summary()
    );
    println!(
        "{} sequences per point, prompts {:?}, decode {:?}, d_model = {} \
         ({} heads × dk {}), window = {}, chunk = {}, ≤{} in flight, \
         KV pool = {} worst-case stacks × {} tokens/page; depths {:?}\n",
        cfg.sequences,
        cfg.prompt,
        cfg.decode,
        cfg.d_model(),
        cfg.heads,
        cfg.dk,
        cfg.window,
        cfg.prefill_chunk,
        cfg.max_in_flight,
        cfg.pool_stacks,
        cfg.page_size,
        cfg.layer_counts,
    );

    let records = run_model(args.threads, &cfg, |r| {
        eprintln!(
            "  measured {:<10} L={:<3} -> {} per tick ({})",
            r.algo,
            r.sf_target,
            fmt_seconds(r.mean_s),
            r.note,
        );
    });

    let field = |note: &str, tag: &str| {
        note.split("; ")
            .find_map(|kv| kv.strip_prefix(tag).map(str::to_owned))
            .unwrap_or_else(|| "—".into())
    };

    // Depth × arrangement → mean tick, latency percentiles, preemptions.
    let headers = [
        "layers",
        "pattern",
        "mean tick",
        "p50 latency",
        "p99 latency",
        "preemptions",
    ];
    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.sf_target),
                format!("{} ({})", r.algo, field(&r.note, "pattern=")),
                fmt_seconds(r.mean_s),
                format!("{} ticks", field(&r.note, "p50t=")),
                format!("{} ticks", field(&r.note, "p99t=")),
                field(&r.note, "pre="),
            ]
        })
        .collect();
    println!("\n{}", ascii_table(&headers, &rows));

    match write_csv(&args.out_dir, "model", &records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write CSV: {e}"),
    }
}
