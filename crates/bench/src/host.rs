//! Host introspection for benchmark provenance (our analogue of the
//! paper's Table I system descriptions).

/// Description of the machine a benchmark ran on.
#[derive(Clone, Debug)]
pub struct HostInfo {
    /// CPU model string (best effort).
    pub cpu: String,
    /// Logical cores available.
    pub cores: usize,
    /// Operating system.
    pub os: String,
    /// Architecture.
    pub arch: String,
}

impl HostInfo {
    /// Detect the current host.
    pub fn detect() -> HostInfo {
        HostInfo {
            cpu: cpu_model(),
            cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
        }
    }

    /// One-line summary for table headers.
    pub fn summary(&self) -> String {
        format!(
            "{} ({} cores, {}-{})",
            self.cpu, self.cores, self.os, self.arch
        )
    }
}

/// Best-effort CPU model name (Linux `/proc/cpuinfo`, else a generic tag).
fn cpu_model() -> String {
    if let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") {
        for line in info.lines() {
            if let Some(rest) = line.strip_prefix("model name") {
                if let Some((_, name)) = rest.split_once(':') {
                    return name.trim().to_string();
                }
            }
        }
    }
    format!("{}-cpu", std::env::consts::ARCH)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_populated() {
        let h = HostInfo::detect();
        assert!(h.cores >= 1);
        assert!(!h.cpu.is_empty());
        assert!(!h.os.is_empty());
        let s = h.summary();
        assert!(s.contains("cores"));
    }
}
