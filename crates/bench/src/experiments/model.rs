//! Decoder-stack serving — layer count × layer pattern, continuous
//! batching over full multi-layer models.
//!
//! Each point compiles a [`DecoderModel`] from one of three layer
//! arrangements at each swept depth and serves one seeded workload
//! through `gpa-serve`'s [`Scheduler`], every tick advancing all
//! runnable stacks through all layers (one batched launch per layer):
//!
//! - **AllFull** — `FFF…F`: full local attention at every layer, the
//!   dense-pattern baseline.
//! - **Bookend** — `FF…SS…FF`: full attention in the first and last
//!   quarter of the stack, sparse dilated attention through the middle —
//!   the paper's recommended arrangement for long contexts.
//! - **Interlaced** — `FSFS…`: alternating full and sparse layers.
//!
//! The KV pool is sized at a fixed number of worst-case *stacks* (so the
//! page budget scales with depth but stays below the workload's total),
//! which keeps paged admission and whole-stack preemption in play at
//! every depth. Wall-time samples are per-tick durations; tick-latency
//! percentiles and the preemption-event total are virtual-clock
//! quantities — deterministic per seed — so they ride in the record's
//! note and survive the regression join. The correctness claim (every
//! completion bitwise equal to the one-stack-at-a-time serve) is enforced
//! by `tests/serving_sim.rs`; a spot-check also runs here under
//! `cfg(test)`.

use crate::args::Scale;
use crate::report::Record;
use gpa_core::{AttentionEngine, AttentionKernel, AttentionPlan};
use gpa_model::{DecoderModel, LayerPattern};
use gpa_serve::{
    generate_model_trace, AdmissionMode, Completion, EvictionMode, ModelTraceEvent, Scheduler,
    ServeConfig, TraceSpec,
};
use std::time::Instant;

/// One layer arrangement in the sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PatternKind {
    /// Full local attention at every layer.
    AllFull,
    /// Full attention in the outer quarters, sparse through the middle.
    Bookend,
    /// Alternating full and sparse layers.
    Interlaced,
}

impl PatternKind {
    /// All swept arrangements, in report order.
    pub const ALL: [PatternKind; 3] = [
        PatternKind::AllFull,
        PatternKind::Bookend,
        PatternKind::Interlaced,
    ];

    /// The CSV `algo` label.
    pub fn label(self) -> &'static str {
        match self {
            PatternKind::AllFull => "AllFull",
            PatternKind::Bookend => "Bookend",
            PatternKind::Interlaced => "Interlaced",
        }
    }

    /// The `LayerPattern` string at the given depth.
    pub fn pattern(self, layers: usize) -> String {
        match self {
            PatternKind::AllFull => "F".repeat(layers),
            PatternKind::Bookend => {
                let f = (layers / 4).max(1);
                if 2 * f >= layers {
                    "F".repeat(layers)
                } else {
                    format!(
                        "{}{}{}",
                        "F".repeat(f),
                        "S".repeat(layers - 2 * f),
                        "F".repeat(f)
                    )
                }
            }
            PatternKind::Interlaced => (0..layers)
                .map(|s| if s % 2 == 0 { 'F' } else { 'S' })
                .collect(),
        }
    }
}

/// Sweep configuration for the decoder-stack serving experiment.
#[derive(Clone, Debug)]
pub struct ModelConfig {
    /// Stack depths to sweep — the layer-count axis.
    pub layer_counts: Vec<usize>,
    /// Sequences per workload point.
    pub sequences: usize,
    /// Inclusive prompt-length range.
    pub prompt: (usize, usize),
    /// Inclusive generated-token range.
    pub decode: (usize, usize),
    /// Attention heads per layer (`d_model = heads × dk`).
    pub heads: usize,
    /// Per-head key dimension.
    pub dk: usize,
    /// Local/dilated window per direction.
    pub window: usize,
    /// Scheduler in-flight cap.
    pub max_in_flight: usize,
    /// Worst-case *stacks* the KV pool holds — the page budget is this
    /// many × `layers × ceil(max_total / page_size)` pages, so pressure
    /// is depth-invariant.
    pub pool_stacks: usize,
    /// Tokens per KV page.
    pub page_size: usize,
    /// Prefill chunk rows.
    pub prefill_chunk: usize,
    /// Workload seed.
    pub seed: u64,
}

impl ModelConfig {
    /// Configuration for a CLI scale.
    pub fn for_scale(scale: Scale) -> ModelConfig {
        match scale {
            Scale::Quick => ModelConfig {
                layer_counts: vec![2, 4],
                sequences: 8,
                prompt: (6, 16),
                decode: (3, 6),
                heads: 2,
                dk: 8,
                window: 4,
                max_in_flight: 4,
                pool_stacks: 3,
                page_size: 8,
                prefill_chunk: 4,
                seed: 0x5EED,
            },
            Scale::Default => ModelConfig {
                layer_counts: vec![4, 8, 12],
                sequences: 24,
                prompt: (32, 96),
                decode: (8, 24),
                heads: 4,
                dk: 16,
                window: 8,
                max_in_flight: 6,
                pool_stacks: 3,
                page_size: 16,
                prefill_chunk: 16,
                seed: 0x5EED,
            },
            Scale::Paper => ModelConfig {
                layer_counts: vec![8, 12, 24],
                sequences: 48,
                prompt: (64, 256),
                decode: (16, 48),
                heads: 4,
                dk: 16,
                window: 16,
                max_in_flight: 8,
                pool_stacks: 3,
                page_size: 32,
                prefill_chunk: 32,
                seed: 0x5EED,
            },
        }
    }

    /// Model width.
    pub fn d_model(&self) -> usize {
        self.heads * self.dk
    }

    /// Page budget at the given depth: `pool_stacks` worst-case stacks.
    fn kv_pages(&self, layers: usize) -> usize {
        self.pool_stacks * layers * (self.prompt.1 + self.decode.1).div_ceil(self.page_size)
    }

    fn scheduler_config(&self, layers: usize) -> ServeConfig {
        ServeConfig {
            max_in_flight: self.max_in_flight,
            kv_pages: self.kv_pages(layers),
            page_size: self.page_size,
            arrival_window: 0,
            prefill_chunk: self.prefill_chunk,
            admission: AdmissionMode::PagedUsage,
            eviction: EvictionMode::Recompute,
            swap_bytes: usize::MAX,
        }
    }

    fn trace_spec(&self, layers: usize) -> TraceSpec {
        TraceSpec {
            sequences: self.sequences,
            prompt: self.prompt,
            decode: self.decode,
            dk: self.dk,
            arrival_gap: (0, 2),
            priority_classes: 2,
            seed: self.seed ^ (layers as u64).wrapping_mul(0x9E37_79B9),
        }
    }
}

/// Compile the swept model at one (depth, arrangement) point. The weight
/// seed is a pure function of the point, so tests rebuild bit-identical
/// models for reference serves.
pub fn build_model(
    cfg: &ModelConfig,
    kind: PatternKind,
    layers: usize,
) -> DecoderModel<'static, f32> {
    let pattern = kind.pattern(layers);
    let full = AttentionPlan::single(AttentionKernel::Local { n: cfg.window })
        .expect("local plan compiles");
    let mut bindings = vec![('F', full)];
    if pattern.contains('S') {
        bindings.push((
            'S',
            AttentionPlan::single(AttentionKernel::Dilated1d {
                w: cfg.window,
                r: 2,
            })
            .expect("dilated plan compiles"),
        ));
    }
    DecoderModel::new(
        LayerPattern::parse(&pattern).expect("swept patterns are valid"),
        bindings,
        cfg.d_model(),
        cfg.heads,
        cfg.dk,
        cfg.seed ^ (layers as u64) << 8 ^ kind.label().len() as u64,
    )
    .expect("swept models compose")
}

/// One continuous replay of a model workload.
struct ModelRun {
    /// Per-tick wall-time samples.
    samples: Vec<f64>,
    /// Every completion, in completion order.
    completions: Vec<Completion<f32>>,
    /// Total tokens computed across completions.
    tokens: usize,
    /// Preemption events over the replay.
    preemptions: u64,
}

/// Serve one model workload through the scheduler.
fn run_point(
    engine_threads: Option<usize>,
    cfg: &ModelConfig,
    kind: PatternKind,
    layers: usize,
    trace: &[ModelTraceEvent<f32>],
) -> ModelRun {
    let engine = match engine_threads {
        Some(t) => AttentionEngine::with_threads(t),
        None => AttentionEngine::new(),
    };
    let mut scheduler: Scheduler<'static, f32> =
        Scheduler::new(engine, cfg.scheduler_config(layers)).expect("valid scheduler config");
    let model = scheduler.register_model(build_model(cfg, kind, layers));
    let mut completions = Vec::new();
    let mut samples = Vec::new();
    let mut next = 0usize;
    while next < trace.len() || !scheduler.is_idle() {
        while next < trace.len() && trace[next].at <= scheduler.now() {
            let mut request = trace[next].request.clone();
            request.model = model;
            scheduler
                .submit_model(request)
                .expect("the pool holds every swept sequence");
            next += 1;
        }
        let started = Instant::now();
        let report = scheduler.tick().expect("healthy workload ticks");
        samples.push(started.elapsed().as_secs_f64());
        completions.extend(report.completed);
    }
    let tokens = completions.iter().map(|c| c.output.rows()).sum();
    ModelRun {
        samples,
        completions,
        tokens,
        preemptions: scheduler.preemption_events(),
    }
}

/// Percentile of already-sorted data by nearest-rank.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Run the depth × arrangement sweep, streaming each record to
/// `on_record`.
pub fn run_model(
    threads: Option<usize>,
    cfg: &ModelConfig,
    mut on_record: impl FnMut(&Record),
) -> Vec<Record> {
    let mut records = Vec::new();
    let mean_prompt = (cfg.prompt.0 + cfg.prompt.1) / 2;
    for &layers in &cfg.layer_counts {
        let trace: Vec<ModelTraceEvent<f32>> = generate_model_trace(
            &cfg.trace_spec(layers),
            &[(gpa_serve::ModelId::default(), cfg.d_model())],
        );
        for kind in PatternKind::ALL {
            let run = run_point(threads, cfg, kind, layers, &trace);
            assert_eq!(run.completions.len(), trace.len(), "every stack completes");
            let mut latencies: Vec<u64> = run
                .completions
                .iter()
                .map(Completion::latency_ticks)
                .collect();
            latencies.sort_unstable();
            let stat = crate::protocol::BenchStat::from_samples(&run.samples);
            let total_s: f64 = run.samples.iter().sum();
            let rec = Record {
                experiment: "model".into(),
                algo: kind.label().into(),
                l: mean_prompt,
                dk: cfg.dk,
                sf_target: layers as f64,
                sf_achieved: f64::NAN,
                mean_s: stat.mean,
                min_s: stat.min,
                max_s: stat.max,
                std_s: stat.std,
                iters: stat.iters,
                // Pattern, tick-latency percentiles, and the preemption
                // total are virtual-clock deterministic per seed — safe
                // in the regression join. Tokens/sec goes to stdout.
                note: format!(
                    "pattern={}; window={}; p50t={}; p99t={}; pre={}",
                    kind.pattern(layers),
                    cfg.window,
                    percentile(&latencies, 50.0),
                    percentile(&latencies, 99.0),
                    run.preemptions,
                ),
            };
            eprintln!(
                "  L{layers} {}: {:.0} tok/s over {} ticks, {} preemptions",
                kind.label(),
                run.tokens as f64 / total_s,
                run.samples.len(),
                run.preemptions,
            );
            on_record(&rec);
            records.push(rec);
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_serve::sequential_model_reference;

    fn tiny() -> ModelConfig {
        ModelConfig {
            layer_counts: vec![2, 3],
            sequences: 4,
            prompt: (2, 6),
            decode: (1, 3),
            heads: 2,
            dk: 4,
            window: 2,
            max_in_flight: 3,
            pool_stacks: 2,
            page_size: 4,
            prefill_chunk: 2,
            seed: 11,
        }
    }

    #[test]
    fn sweep_covers_every_pattern_at_every_depth() {
        let cfg = tiny();
        let mut streamed = 0usize;
        let records = run_model(Some(2), &cfg, |_| streamed += 1);
        assert_eq!(records.len(), streamed);
        assert_eq!(
            records.len(),
            PatternKind::ALL.len() * cfg.layer_counts.len()
        );
        for &layers in &cfg.layer_counts {
            for kind in PatternKind::ALL {
                assert!(
                    records
                        .iter()
                        .any(|r| r.algo == kind.label() && r.sf_target == layers as f64),
                    "missing {} at {layers} layers",
                    kind.label()
                );
            }
        }
        assert!(records.iter().all(|r| r.mean_s > 0.0 && r.iters > 0));
        assert!(records.iter().all(|r| r.note.contains("pattern=")
            && r.note.contains("p50t=")
            && r.note.contains("p99t=")
            && r.note.contains("pre=")));
    }

    #[test]
    fn patterns_tile_every_depth() {
        for layers in 1..=16 {
            for kind in PatternKind::ALL {
                let p = kind.pattern(layers);
                assert_eq!(p.len(), layers);
                assert!(p.chars().all(|c| c == 'F' || c == 'S'));
                assert!(p.starts_with('F'), "{p} must open with full attention");
            }
        }
        assert_eq!(PatternKind::Bookend.pattern(12), "FFFSSSSSSFFF");
        assert_eq!(PatternKind::Interlaced.pattern(5), "FSFSF");
    }

    #[test]
    fn measured_serving_is_bitwise_the_sequential_stack_serve() {
        // The measured loop must serve real decoder stacks: rebuild the
        // swept model (same point → same weight seed) and check every
        // completion against the one-stack-at-a-time reference.
        let cfg = tiny();
        let layers = 3;
        let trace: Vec<ModelTraceEvent<f32>> = generate_model_trace(
            &cfg.trace_spec(layers),
            &[(gpa_serve::ModelId::default(), cfg.d_model())],
        );
        let run = run_point(Some(2), &cfg, PatternKind::Interlaced, layers, &trace);
        assert_eq!(run.completions.len(), trace.len());
        let engine = AttentionEngine::with_threads(2);
        let model = build_model(&cfg, PatternKind::Interlaced, layers);
        for c in &run.completions {
            let expect = sequential_model_reference(
                &engine,
                &model,
                &trace[c.id.as_u64() as usize].request,
                cfg.prefill_chunk,
            )
            .unwrap();
            assert_eq!(c.output, expect);
        }
    }

    #[test]
    fn percentiles_by_nearest_rank() {
        let sorted = [1u64, 2, 3, 4, 10];
        assert_eq!(percentile(&sorted, 50.0), 3);
        assert_eq!(percentile(&sorted, 99.0), 10);
    }
}
