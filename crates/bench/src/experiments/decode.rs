//! Decode latency — per-token cost of KV-cached autoregressive decode as
//! the context grows, for each sparse kernel family.
//!
//! This is the serving regime the geometry refactor exists for: each step
//! appends one token's K/V rows to a [`gpa_core::KvCache`] and computes a
//! single [`gpa_core::Geometry::decode`] row over the cache. A sparse
//! kernel's per-token work is `O(row nnz · dk)` — flat in context length
//! for local/dilated bands, growing only with the global set for global
//! attention — which is where sparse attention wins decode (InAttention's
//! linear inference-time scaling, "The Sparse Frontier"'s decode-side
//! trade-offs).
//!
//! Length-free plans (the implicit window kernels) are compiled **once**
//! and reused for every step; length-pinned families (Global, DIA) rebuild
//! their `O(#globals)` / `O(#offsets)` descriptor per step, and that
//! rebuild is charged to the measured step — it is part of the real decode
//! cost. Explicit COO/CSR masks are excluded: rebuilding an `O(nnz)` mask
//! per token is not a serving-shaped workload.

use crate::args::Scale;
use crate::report::Record;
use gpa_core::{AttentionEngine, AttentionKernel, KvCache};
use gpa_masks::GlobalSet;
use gpa_sparse::DiaMask;
use gpa_tensor::init::qkv;
use gpa_tensor::Matrix;
use std::time::Instant;

/// Sweep configuration for the decode-latency experiment.
#[derive(Clone, Debug)]
pub struct DecodeConfig {
    /// Context lengths at which decode throughput is sampled (the cache is
    /// prefilled to each length before timing).
    pub context_lengths: Vec<usize>,
    /// Key/value dimension.
    pub dk: usize,
    /// Local window per direction (dilated widths and the global count are
    /// derived from it, so every kernel does comparable per-row work).
    pub window: usize,
    /// Untimed decode steps before measurement.
    pub warmup_steps: usize,
    /// Timed decode steps (each appends a token).
    pub timed_steps: usize,
    /// Workload seed.
    pub seed: u64,
}

impl DecodeConfig {
    /// Configuration for a CLI scale.
    pub fn for_scale(scale: Scale) -> DecodeConfig {
        match scale {
            Scale::Quick => DecodeConfig {
                context_lengths: vec![64, 256],
                dk: 16,
                window: 8,
                warmup_steps: 2,
                timed_steps: 8,
                seed: 0x5EED,
            },
            Scale::Default => DecodeConfig {
                context_lengths: vec![1_024, 4_096, 16_384],
                dk: 64,
                window: 64,
                warmup_steps: 8,
                timed_steps: 64,
                seed: 0x5EED,
            },
            Scale::Paper => DecodeConfig {
                context_lengths: vec![8_192, 32_768, 131_072],
                dk: 64,
                window: 128,
                warmup_steps: 10,
                timed_steps: 256,
                seed: 0x5EED,
            },
        }
    }

    /// Tokens generated per sampled context length (warm-up + timed).
    pub fn steps_per_point(&self) -> usize {
        self.warmup_steps + self.timed_steps
    }
}

/// The kernel families the decode sweep covers.
const FAMILIES: [&str; 5] = ["Local", "Dilated-1D", "Dilated-2D", "Global", "DIA"];

/// Run the decode sweep, streaming each record to `on_record`.
pub fn run_decode(
    engine: &AttentionEngine,
    cfg: &DecodeConfig,
    mut on_record: impl FnMut(&Record),
) -> Vec<Record> {
    let mut records = Vec::new();
    let max_l = cfg.context_lengths.iter().copied().max().unwrap_or(0);
    let total = max_l + cfg.steps_per_point();
    // One token stream reused across kernels: Q/K/V rows for the longest
    // context plus every generated token.
    let (q, k, v) = qkv::<f32>(total, cfg.dk, cfg.seed);

    for family in FAMILIES {
        // Length-free families: ONE plan compiled here, outside the timed
        // region, reused for every step — the compile-once property the
        // geometry refactor gives implicit kernels. Length-pinned families
        // (Global, DIA) return None and rebuild per step inside the timed
        // region instead.
        let reusable_kernel: Option<AttentionKernel<'_>> = match family {
            "Local" => Some(AttentionKernel::Local { n: cfg.window }),
            "Dilated-1D" => Some(AttentionKernel::Dilated1d {
                w: 2 * cfg.window + 1,
                r: 1,
            }),
            "Dilated-2D" => Some(AttentionKernel::Dilated2d {
                block_size: 2 * cfg.window + 1,
                r: 1,
            }),
            _ => None,
        };
        let reusable_plan = reusable_kernel
            .map(|kernel| engine.compile(&[kernel]).expect("implicit plan compiles"));
        for &l in &cfg.context_lengths {
            let mut cache = KvCache::single(cfg.dk, cfg.dk);
            cache.extend(0, &k.rows_slice(0, l), &v.rows_slice(0, l));
            let mut samples = Vec::with_capacity(cfg.timed_steps);
            for step in 0..cfg.steps_per_point() {
                let t = l + step;
                let q_t = q.rows_slice(t, t + 1);
                let k_t = k.rows_slice(t, t + 1);
                let v_t = v.rows_slice(t, t + 1);
                let started = Instant::now();
                let out = match &reusable_plan {
                    Some(plan) => engine
                        .decode_step(plan, &q_t, &k_t, &v_t, &mut cache)
                        .expect("decode step executes"),
                    None => decode_pinned(engine, family, cfg, &q_t, &k_t, &v_t, &mut cache),
                };
                let elapsed = started.elapsed().as_secs_f64();
                std::hint::black_box(out);
                if step >= cfg.warmup_steps {
                    samples.push(elapsed);
                }
            }
            let stat = crate::protocol::BenchStat::from_samples(&samples);
            let rec = Record {
                experiment: "decode".into(),
                algo: family.into(),
                l,
                dk: cfg.dk,
                sf_target: f64::NAN,
                sf_achieved: f64::NAN,
                mean_s: stat.mean,
                min_s: stat.min,
                max_s: stat.max,
                std_s: stat.std,
                iters: stat.iters,
                note: format!("tokens/s={:.0}; window={}", 1.0 / stat.mean, cfg.window),
            };
            on_record(&rec);
            records.push(rec);
        }
    }
    records
}

/// One timed decode step for a *length-pinned* family (Global, DIA):
/// the per-step descriptor rebuild happens inside the timed region — it
/// is part of their real per-token cost.
fn decode_pinned(
    engine: &AttentionEngine,
    family: &str,
    cfg: &DecodeConfig,
    q_t: &Matrix<f32>,
    k_t: &Matrix<f32>,
    v_t: &Matrix<f32>,
    cache: &mut KvCache<f32>,
) -> Matrix<f32> {
    let n = cfg.window;
    match family {
        "Global" => {
            // Global tokens pin the context length: rebuild the set at the
            // post-append length (cache.len() + 1).
            let len = cache.len() + 1;
            let globals = GlobalSet::evenly_spaced(len, (2 * n + 1).min(len));
            let plan = engine
                .compile(&[AttentionKernel::Global {
                    globals: &globals,
                    n_sub: 0,
                }])
                .expect("global plan");
            engine.decode_step(&plan, q_t, k_t, v_t, cache)
        }
        "DIA" => {
            let len = cache.len() + 1;
            let band = DiaMask::local(len, n);
            let plan = engine
                .compile(&[AttentionKernel::Dia(&band)])
                .expect("dia plan");
            engine.decode_step(&plan, q_t, k_t, v_t, cache)
        }
        other => unreachable!("unknown decode family {other}"),
    }
    .expect("decode step executes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_covers_every_family_and_length() {
        let engine = AttentionEngine::with_threads(2);
        let cfg = DecodeConfig {
            context_lengths: vec![16, 32],
            dk: 4,
            window: 2,
            warmup_steps: 1,
            timed_steps: 3,
            seed: 7,
        };
        let mut streamed = 0usize;
        let records = run_decode(&engine, &cfg, |_| streamed += 1);
        assert_eq!(records.len(), streamed);
        assert_eq!(records.len(), FAMILIES.len() * 2);
        for family in FAMILIES {
            assert!(records.iter().any(|r| r.algo == family), "missing {family}");
        }
        assert!(records.iter().all(|r| r.mean_s > 0.0 && r.iters == 3));
        assert!(records.iter().all(|r| r.note.contains("tokens/s=")));
    }

    #[test]
    fn decode_outputs_match_the_square_prefix_reference() {
        // The measured loop must compute real attention: spot-check the
        // length-pinned DIA path against the square forward's last row.
        let engine = AttentionEngine::with_threads(2);
        let l = 20;
        let (q, k, v) = qkv::<f32>(l + 1, 8, 9);
        let mut cache = KvCache::single(8, 8);
        cache.extend(0, &k.rows_slice(0, l), &v.rows_slice(0, l));
        let cfg = DecodeConfig {
            context_lengths: vec![l],
            dk: 8,
            window: 3,
            warmup_steps: 0,
            timed_steps: 1,
            seed: 9,
        };
        let out = decode_pinned(
            &engine,
            "DIA",
            &cfg,
            &q.rows_slice(l, l + 1),
            &k.rows_slice(l, l + 1),
            &v.rows_slice(l, l + 1),
            &mut cache,
        );
        let band = DiaMask::local(l + 1, 3);
        let plan = engine.compile(&[AttentionKernel::Dia(&band)]).unwrap();
        let full = engine
            .run(
                &plan,
                &q.rows_slice(0, l + 1),
                &k.rows_slice(0, l + 1),
                &v.rows_slice(0, l + 1),
            )
            .unwrap();
        assert_eq!(out.row(0), full.row(l));
    }
}
