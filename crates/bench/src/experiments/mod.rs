//! Experiment runners — one module per paper table/figure (see DESIGN.md
//! §4 for the experiment index) plus the ablation studies.

pub mod ablations;
pub mod adaptive;
pub mod decode;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod model;
pub mod serving;
pub mod substrates;
pub mod table3;

pub use ablations::{run_ablations, AblationConfig};
pub use adaptive::{run_adaptive, AdaptiveConfig};
pub use decode::{run_decode, DecodeConfig};
pub use fig3::{run_fig3, Fig3Config};
pub use fig5::{run_fig5, Fig5Config};
pub use fig6::{run_fig6, Fig6Config};
pub use model::{run_model, ModelConfig, PatternKind};
pub use serving::{run_serving, ServingConfig};
pub use substrates::{best_noop_grain, run_substrates, SubstratesConfig};
pub use table3::{run_table3, Table3Config};
