//! Fig. 5 — FlashAttention vs local attention as context grows, under a
//! constant window (left panel: sparsity increases with `L`) and a constant
//! sparsity factor (right panel: window grows with `L`).
//!
//! Paper setup (Section V-E): A100, FP16, `L` from 65k to 2.1M, windows
//! {5, 50, 500}, sparsity factors {1e-2, 1e-3, 1e-4}.

use crate::args::Scale;
use crate::protocol::{measure_auto, Protocol};
use crate::report::Record;
use gpa_core::{AttentionEngine, AttentionKernel, AttentionPlan};
use gpa_masks::{local_window_for_sparsity, LocalWindow, MaskPattern};
use gpa_tensor::init::qkv;
use gpa_tensor::Matrix;

/// Sweep configuration for Fig. 5.
#[derive(Clone, Debug)]
pub struct Fig5Config {
    /// Context-length ladder (x-axis).
    pub ls: Vec<usize>,
    /// Constant windows for the left panel.
    pub windows: Vec<usize>,
    /// Constant sparsity factors for the right panel.
    pub sfs: Vec<f64>,
    /// Embedding dimension.
    pub dk: usize,
    /// FlashAttention is measured up to this length; larger entries are
    /// extrapolated from the largest measurement via its `O(L²)` work
    /// (marked "estimated" in the record note).
    pub flash_max_l: usize,
    /// Measurement protocol ceiling.
    pub protocol: Protocol,
    /// Per-case time budget (seconds).
    pub budget_s: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Fig5Config {
    /// Configuration for a CLI scale.
    pub fn for_scale(scale: Scale) -> Fig5Config {
        match scale {
            Scale::Quick => Fig5Config {
                ls: vec![512, 1024],
                windows: vec![5, 50],
                sfs: vec![1e-2],
                dk: 32,
                flash_max_l: 1024,
                protocol: Protocol {
                    warmup: 1,
                    iters: 2,
                },
                budget_s: 2.0,
                seed: 0x5EED,
            },
            Scale::Default => Fig5Config {
                ls: vec![2048, 4096, 8192, 16384, 32768],
                windows: vec![5, 50, 500],
                sfs: vec![1e-2, 1e-3, 1e-4],
                dk: 64,
                flash_max_l: 8192,
                protocol: Protocol::cpu_default(),
                budget_s: 15.0,
                seed: 0x5EED,
            },
            Scale::Paper => Fig5Config {
                ls: vec![65_536, 131_072, 262_144, 524_288, 1_048_576, 2_097_152],
                windows: vec![5, 50, 500],
                sfs: vec![1e-2, 1e-3, 1e-4],
                dk: 64,
                flash_max_l: 2_097_152,
                protocol: Protocol::paper(),
                budget_s: f64::INFINITY,
                seed: 0x5EED,
            },
        }
    }
}

/// Run the two sweeps; streams records through `on_record`. Each series
/// point compiles an engine plan once and reuses it across iterations.
pub fn run_fig5(
    engine: &AttentionEngine,
    cfg: &Fig5Config,
    mut on_record: impl FnMut(&Record),
) -> Vec<Record> {
    let mut records = Vec::new();
    let flash_plan = AttentionPlan::single(AttentionKernel::Flash).expect("flash plan compiles");
    // Largest measured flash point, for O(L²) extrapolation.
    let mut flash_ref: Option<(usize, f64)> = None;

    for &l in &cfg.ls {
        let (q, k, v): (Matrix<f32>, _, _) = qkv(l, cfg.dk, cfg.seed);

        // FlashAttention series (both panels share it).
        let rec = if l <= cfg.flash_max_l {
            let stat = measure_auto(cfg.protocol, cfg.budget_s, || {
                std::hint::black_box(engine.run(&flash_plan, &q, &k, &v).unwrap());
            });
            flash_ref = Some((l, stat.mean));
            Record {
                experiment: "fig5".into(),
                algo: "FlashAttention".into(),
                l,
                dk: cfg.dk,
                sf_target: f64::NAN,
                sf_achieved: 1.0,
                mean_s: stat.mean,
                min_s: stat.min,
                max_s: stat.max,
                std_s: stat.std,
                iters: stat.iters,
                note: String::new(),
            }
        } else {
            let (l0, t0) = flash_ref.expect("ladder must start below flash_max_l");
            let scale = (l as f64 / l0 as f64).powi(2);
            Record {
                experiment: "fig5".into(),
                algo: "FlashAttention".into(),
                l,
                dk: cfg.dk,
                sf_target: f64::NAN,
                sf_achieved: 1.0,
                mean_s: t0 * scale,
                min_s: f64::NAN,
                max_s: f64::NAN,
                std_s: f64::NAN,
                iters: 0,
                note: format!("estimated from L={l0} via O(L^2) work scaling"),
            }
        };
        on_record(&rec);
        records.push(rec);

        // Left panel: constant windows.
        for &w in &cfg.windows {
            let plan = AttentionPlan::single(AttentionKernel::Local { n: w })
                .expect("local plan compiles");
            let stat = measure_auto(cfg.protocol, cfg.budget_s, || {
                std::hint::black_box(engine.run(&plan, &q, &k, &v).unwrap());
            });
            let rec = Record {
                experiment: "fig5".into(),
                algo: format!("Local (window={w})"),
                l,
                dk: cfg.dk,
                sf_target: f64::NAN,
                sf_achieved: LocalWindow::new(l, w).sparsity_factor(),
                mean_s: stat.mean,
                min_s: stat.min,
                max_s: stat.max,
                std_s: stat.std,
                iters: stat.iters,
                note: "constant window".into(),
            };
            on_record(&rec);
            records.push(rec);
        }

        // Right panel: constant sparsity (window grows with L).
        for &sf in &cfg.sfs {
            let w = local_window_for_sparsity(l, sf);
            let plan = AttentionPlan::single(AttentionKernel::Local { n: w })
                .expect("local plan compiles");
            let stat = measure_auto(cfg.protocol, cfg.budget_s, || {
                std::hint::black_box(engine.run(&plan, &q, &k, &v).unwrap());
            });
            let rec = Record {
                experiment: "fig5".into(),
                algo: format!("Local (Sf={sf})"),
                l,
                dk: cfg.dk,
                sf_target: sf,
                sf_achieved: LocalWindow::new(l, w).sparsity_factor(),
                mean_s: stat.mean,
                min_s: stat.min,
                max_s: stat.max,
                std_s: stat.std,
                iters: stat.iters,
                note: "constant sparsity".into(),
            };
            on_record(&rec);
            records.push(rec);
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_both_panels() {
        let engine = AttentionEngine::with_threads(2);
        let cfg = Fig5Config::for_scale(Scale::Quick);
        let records = run_fig5(&engine, &cfg, |_| {});
        // Per L: 1 flash + 2 windows + 1 sf.
        assert_eq!(records.len(), 2 * 4);
        assert!(records.iter().any(|r| r.algo == "FlashAttention"));
        assert!(records.iter().any(|r| r.algo.starts_with("Local (window=")));
        assert!(records.iter().any(|r| r.algo.starts_with("Local (Sf=")));
    }

    #[test]
    fn flash_extrapolation_scales_quadratically() {
        let engine = AttentionEngine::with_threads(2);
        let cfg = Fig5Config {
            ls: vec![256, 512, 1024],
            windows: vec![5],
            sfs: vec![1e-2],
            dk: 32,
            flash_max_l: 512,
            protocol: Protocol {
                warmup: 1,
                iters: 2,
            },
            budget_s: 5.0,
            seed: 3,
        };
        let records = run_fig5(&engine, &cfg, |_| {});
        let flash: Vec<&Record> = records
            .iter()
            .filter(|r| r.algo == "FlashAttention")
            .collect();
        assert_eq!(flash.len(), 3);
        let measured_512 = flash.iter().find(|r| r.l == 512).unwrap();
        let est_1024 = flash.iter().find(|r| r.l == 1024).unwrap();
        assert!(est_1024.note.contains("estimated"));
        assert!((est_1024.mean_s / measured_512.mean_s - 4.0).abs() < 1e-9);
    }
}
