//! Adaptive-sparsity trade-off surface — attention pattern × routed group
//! count × context length.
//!
//! For every context length the sweep measures a dense baseline
//! (FlashAttention), a static sparse comparator (Local), and the
//! content-routed block-diagonal kernel at each group count `K`, and
//! records three axes per point:
//!
//! - **work** — query–key dot products actually performed, tallied by the
//!   engine's [`gpa_parallel::WorkCounter`] (exact, not analytic). A
//!   routed row's work is `Σ_g n_g²` over its group sizes; zero-mean
//!   queries route near-balanced, so it lands at `≈ L²/K` against the
//!   dense baseline's `L²`;
//! - **throughput** — tokens per second of the square forward, derivable
//!   from the record as `L / mean_s` (kept out of the note so the
//!   regression join stays deterministic);
//! - **memory** — the working-set bytes of the serving configuration:
//!   K + V rows at `f32` plus, for routed rows, the per-token group
//!   assignment the KV cache carries.
//!
//! The CSV encodes the surface as `sf_target` (the ideal `1/K` for routed
//! rows) against `sf_achieved` (measured work / `L²`), so plotting
//! achieved-vs-target shows how far router imbalance strays from the
//! block-diagonal ideal.

use crate::args::Scale;
use crate::protocol::{measure_auto, Protocol};
use crate::report::Record;
use gpa_core::{AttentionEngine, AttentionKernel, AttentionPlan};
use gpa_tensor::init::gaussian_matrix;
use gpa_tensor::Matrix;

/// Sweep configuration for the adaptive-sparsity surface.
#[derive(Clone, Debug)]
pub struct AdaptiveConfig {
    /// Context-length ladder (one surface slice per entry).
    pub ls: Vec<usize>,
    /// Routed group counts `K` to sweep.
    pub groups: Vec<usize>,
    /// Window of the static Local comparator.
    pub window: usize,
    /// Key dimension.
    pub dk: usize,
    /// Measurement protocol ceiling.
    pub protocol: Protocol,
    /// Per-case time budget (seconds).
    pub budget_s: f64,
    /// Workload seed.
    pub seed: u64,
}

impl AdaptiveConfig {
    /// Configuration for a CLI scale.
    pub fn for_scale(scale: Scale) -> AdaptiveConfig {
        match scale {
            Scale::Quick => AdaptiveConfig {
                ls: vec![256, 512],
                groups: vec![2, 4],
                window: 8,
                dk: 16,
                protocol: Protocol {
                    warmup: 1,
                    iters: 2,
                },
                budget_s: 2.0,
                seed: 0x5EED,
            },
            Scale::Default => AdaptiveConfig {
                ls: vec![1024, 2048, 4096],
                groups: vec![2, 4, 8, 16],
                window: 32,
                dk: 64,
                protocol: Protocol::cpu_default(),
                budget_s: 10.0,
                seed: 0x5EED,
            },
            Scale::Paper => AdaptiveConfig {
                ls: vec![8192, 16384, 32768, 65536],
                groups: vec![4, 16, 64],
                window: 64,
                dk: 64,
                protocol: Protocol::paper(),
                budget_s: f64::INFINITY,
                seed: 0x5EED,
            },
        }
    }
}

/// One measured point of the surface: time the square forward, tally its
/// exact dot-product work (falling back to the plan's analytic estimate
/// when the engine was built without a counter), and fold throughput and
/// working-set memory into the note.
#[allow(clippy::too_many_arguments)]
fn measure_point(
    engine: &AttentionEngine,
    cfg: &AdaptiveConfig,
    plan: &AttentionPlan<'_>,
    algo: String,
    l: usize,
    sf_target: f64,
    routed: bool,
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
) -> Record {
    let work = match engine.work_counter() {
        Some(counter) => {
            counter.reset();
            let _ = std::hint::black_box(engine.run(plan, q, k, v).unwrap());
            counter.dot_products()
        }
        None => plan.estimated_edges(l),
    };
    let stat = measure_auto(cfg.protocol, cfg.budget_s, || {
        std::hint::black_box(engine.run(plan, q, k, v).unwrap());
    });
    // Serving working set: K + V rows at f32, plus one u32 group
    // assignment per token for routed sequences.
    let kv_bytes = 2 * l * cfg.dk * std::mem::size_of::<f32>()
        + if routed {
            l * std::mem::size_of::<u32>()
        } else {
            0
        };
    Record {
        experiment: "adaptive".into(),
        algo,
        l,
        dk: cfg.dk,
        sf_target,
        sf_achieved: work as f64 / (l as f64 * l as f64),
        mean_s: stat.mean,
        min_s: stat.min,
        max_s: stat.max,
        std_s: stat.std,
        iters: stat.iters,
        // Deterministic per (seed, L, pattern): the regression script
        // joins on the note, so no timing-derived values belong here.
        note: format!("work={work} kv_bytes={kv_bytes}"),
    }
}

/// Run the surface sweep; streams records through `on_record`. Build the
/// engine with [`gpa_core::AttentionEngineBuilder::count_work`] so routed
/// rows report measured — not analytic — work.
pub fn run_adaptive(
    engine: &AttentionEngine,
    cfg: &AdaptiveConfig,
    mut on_record: impl FnMut(&Record),
) -> Vec<Record> {
    let mut records = Vec::new();
    let flash = AttentionPlan::single(AttentionKernel::Flash).expect("flash plan compiles");
    let local = AttentionPlan::single(AttentionKernel::Local { n: cfg.window })
        .expect("local plan compiles");

    for &l in &cfg.ls {
        // Zero-mean rows: the router's projection scores are symmetric
        // around zero, so groups come out near-balanced (uniform [0,1)
        // rows would skew toward the most-positive direction).
        let q = gaussian_matrix::<f32>(l, cfg.dk, 1.0, cfg.seed ^ l as u64);
        let k = gaussian_matrix::<f32>(l, cfg.dk, 1.0, cfg.seed ^ l as u64 ^ 0x7E57);
        let v = gaussian_matrix::<f32>(l, cfg.dk, 1.0, cfg.seed ^ l as u64 ^ 0xF00D);

        let mut points: Vec<(AttentionPlan<'_>, String, f64, bool)> = vec![
            (flash.clone(), "Dense (Flash)".into(), f64::NAN, false),
            (
                local.clone(),
                format!("Local (window={})", cfg.window),
                f64::NAN,
                false,
            ),
        ];
        for &groups in &cfg.groups {
            let plan = AttentionPlan::single(AttentionKernel::Routed {
                groups,
                seed: cfg.seed ^ 0xB10C,
                causal: false,
            })
            .expect("routed plan compiles");
            points.push((
                plan,
                format!("Routed (K={groups})"),
                1.0 / groups as f64,
                true,
            ));
        }

        for (plan, algo, sf_target, routed) in points {
            let rec = measure_point(engine, cfg, &plan, algo, l, sf_target, routed, &q, &k, &v);
            on_record(&rec);
            records.push(rec);
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_core::{RoutedSpec, Router};

    fn counting_engine() -> AttentionEngine {
        AttentionEngine::builder()
            .threads(2)
            .count_work(true)
            .build()
    }

    #[test]
    fn quick_run_covers_the_surface() {
        let engine = counting_engine();
        let cfg = AdaptiveConfig::for_scale(Scale::Quick);
        let records = run_adaptive(&engine, &cfg, |_| {});
        // Per L: dense + local + one row per K.
        assert_eq!(records.len(), cfg.ls.len() * (2 + cfg.groups.len()));
        for &l in &cfg.ls {
            assert!(records
                .iter()
                .any(|r| r.l == l && r.algo == "Dense (Flash)"));
            assert!(records
                .iter()
                .any(|r| r.l == l && r.algo.starts_with("Local")));
            for &k in &cfg.groups {
                assert!(records
                    .iter()
                    .any(|r| r.l == l && r.algo == format!("Routed (K={k})")));
            }
        }
        // Every note carries the deterministic surface axes (throughput
        // is derivable as L / mean_s).
        for r in &records {
            assert!(r.note.contains("work="), "{}", r.note);
            assert!(r.note.contains("kv_bytes="), "{}", r.note);
        }
    }

    #[test]
    fn routed_work_is_measured_exactly_and_tracks_inverse_k() {
        let engine = counting_engine();
        let cfg = AdaptiveConfig::for_scale(Scale::Quick);
        let records = run_adaptive(&engine, &cfg, |_| {});
        for &l in &cfg.ls {
            let dense = records
                .iter()
                .find(|r| r.l == l && r.algo == "Dense (Flash)")
                .unwrap();
            // The dense baseline measures exactly L² dot products.
            assert_eq!(dense.sf_achieved, 1.0, "dense work must be L² at L={l}");
            let q = gaussian_matrix::<f32>(l, cfg.dk, 1.0, cfg.seed ^ l as u64);
            let mut last_work = u64::MAX;
            for &k in &cfg.groups {
                let rec = records
                    .iter()
                    .find(|r| r.l == l && r.algo == format!("Routed (K={k})"))
                    .unwrap();
                // Measured work equals Σ n_g² over the router's actual
                // group sizes — the kernel touches exactly its block
                // diagonal, nothing more.
                let routing = Router::new(RoutedSpec {
                    groups: k,
                    seed: cfg.seed ^ 0xB10C,
                })
                .route(&q);
                let expect: u64 = (0..k)
                    .map(|g| routing.members(g).len() as u64)
                    .map(|n| n * n)
                    .sum();
                let measured = (rec.sf_achieved * (l as f64 * l as f64)).round() as u64;
                assert_eq!(measured, expect, "Routed K={k} L={l} measured work");
                // Near-balanced routing: within 2× of the ideal L²/K, and
                // strictly shrinking as K grows.
                let ideal = (l as f64 * l as f64) / k as f64;
                assert!(
                    (measured as f64) < 2.0 * ideal,
                    "Routed K={k} L={l}: work {measured} strays past 2×L²/K"
                );
                assert!(measured < last_work, "work must shrink with K");
                last_work = measured;
            }
        }
    }
}
