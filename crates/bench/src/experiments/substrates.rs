//! Substrate overhead — per-launch cost of the work-stealing pool and the
//! engine's batched dispatch, swept over `Schedule::Dynamic` grains.
//!
//! Two families of cases:
//!
//! 1. **`noop` launches**: `parallel_for` over `n` rows whose body does no
//!    work, so the measured time *is* the substrate — job injection,
//!    stealing, latch count-down, wake-up. Swept over the dynamic grain
//!    (plus a static-contiguous reference point); this is the data the
//!    default grain in [`gpa_parallel::Schedule::Dynamic`] is picked from.
//! 2. **Engine batched launches**: `n_seqs` short sequences through one
//!    flattened `run_batch` vs `n_seqs` sequential `run` calls, and the
//!    same batch swept over dynamic grains — the serving-shaped workload
//!    the per-launch overhead is amortized against.
//!
//! The pool's substrate counters (steals, injector traffic, parks) are
//! snapshotted around the noop sweep so the binary can report *why* a
//! grain wins, not just that it does.

use crate::args::Scale;
use crate::protocol::{measure, Protocol};
use crate::report::Record;
use gpa_core::{AttentionEngine, AttentionKernel, AttentionRequest, KernelOptions};
use gpa_parallel::{parallel_for, PoolReport, Schedule, ThreadPool};
use gpa_tensor::init::qkv;
use gpa_tensor::Matrix;

/// Sweep configuration for the substrate-overhead experiment.
#[derive(Clone, Debug)]
pub struct SubstratesConfig {
    /// Rows per noop launch.
    pub n: usize,
    /// `Schedule::Dynamic` grains to sweep (both families).
    pub grains: Vec<usize>,
    /// Sequences per batched engine launch.
    pub n_seqs: usize,
    /// Tokens per sequence.
    pub seq_len: usize,
    /// Key/value dimension of the engine workload.
    pub dk: usize,
    /// Local window of the engine workload's kernel.
    pub window: usize,
    /// Warm-up/measure counts per case.
    pub protocol: Protocol,
    /// Workload seed.
    pub seed: u64,
}

impl SubstratesConfig {
    /// Configuration for a CLI scale.
    pub fn for_scale(scale: Scale) -> SubstratesConfig {
        match scale {
            Scale::Quick => SubstratesConfig {
                n: 4_096,
                grains: vec![1, 4, 16, 64],
                n_seqs: 8,
                seq_len: 128,
                dk: 16,
                window: 8,
                protocol: Protocol {
                    warmup: 5,
                    iters: 30,
                },
                seed: 0x5EED,
            },
            Scale::Default | Scale::Paper => SubstratesConfig {
                n: 4_096,
                grains: vec![1, 4, 16, 64, 256],
                n_seqs: 16,
                seq_len: 256,
                dk: 32,
                window: 8,
                protocol: Protocol {
                    warmup: 10,
                    iters: 100,
                },
                seed: 0x5EED,
            },
        }
    }
}

/// Run the substrate sweep. Returns the records plus the pool-counter
/// delta accumulated over the *noop* family (the engine family runs on the
/// engine's own pool).
pub fn run_substrates(
    pool: &ThreadPool,
    engine: &AttentionEngine,
    cfg: &SubstratesConfig,
    mut on_record: impl FnMut(&Record),
) -> (Vec<Record>, PoolReport) {
    let mut records = Vec::new();
    let mut push = |rec: Record| {
        on_record(&rec);
        records.push(rec);
    };
    let noop_record =
        |algo: String, stat: crate::protocol::BenchStat, cfg: &SubstratesConfig| Record {
            experiment: "substrates".into(),
            algo,
            l: cfg.n,
            dk: 0,
            sf_target: f64::NAN,
            sf_achieved: f64::NAN,
            mean_s: stat.mean,
            min_s: stat.min,
            max_s: stat.max,
            std_s: stat.std,
            iters: stat.iters,
            note: "noop launch".into(),
        };

    // Family 1: empty-body launches — pure substrate overhead.
    let before = pool.metrics().report();
    for &grain in &cfg.grains {
        let stat = measure(cfg.protocol, || {
            parallel_for(pool, cfg.n, Schedule::Dynamic { grain }, |range| {
                std::hint::black_box(range.len());
            });
        });
        push(noop_record(format!("noop_dynamic_g{grain}"), stat, cfg));
    }
    let stat = measure(cfg.protocol, || {
        parallel_for(pool, cfg.n, Schedule::StaticContiguous, |range| {
            std::hint::black_box(range.len());
        });
    });
    push(noop_record("noop_static".into(), stat, cfg));
    let after = pool.metrics().report();
    let delta = PoolReport {
        jobs_executed: after.jobs_executed - before.jobs_executed,
        injector_pushes: after.injector_pushes - before.injector_pushes,
        injector_pops: after.injector_pops - before.injector_pops,
        steal_attempts: after.steal_attempts - before.steal_attempts,
        steals: after.steals - before.steals,
        range_steals: after.range_steals - before.range_steals,
        parks: after.parks - before.parks,
    };

    // Family 2: serving-shaped batched launches through the engine.
    let plan = engine
        .compile(&[AttentionKernel::Local { n: cfg.window }])
        .expect("local plan compiles");
    let seqs: Vec<(Matrix<f32>, Matrix<f32>, Matrix<f32>)> = (0..cfg.n_seqs)
        .map(|s| qkv(cfg.seq_len, cfg.dk, cfg.seed + s as u64))
        .collect();
    let requests: Vec<AttentionRequest<'_, f32>> = seqs
        .iter()
        .map(|(q, k, v)| AttentionRequest::new(q, k, v))
        .collect();
    let engine_record =
        |algo: String, stat: crate::protocol::BenchStat, cfg: &SubstratesConfig| Record {
            experiment: "substrates".into(),
            algo,
            l: cfg.seq_len,
            dk: cfg.dk,
            sf_target: f64::NAN,
            sf_achieved: f64::NAN,
            mean_s: stat.mean,
            min_s: stat.min,
            max_s: stat.max,
            std_s: stat.std,
            iters: stat.iters,
            note: format!("batch of {}", cfg.n_seqs),
        };

    let stat = measure(cfg.protocol, || {
        std::hint::black_box(engine.run_batch(&plan, &requests).unwrap());
    });
    push(engine_record("engine_batched".into(), stat, cfg));
    let stat = measure(cfg.protocol, || {
        for (q, k, v) in &seqs {
            std::hint::black_box(engine.run(&plan, q, k, v).unwrap());
        }
    });
    push(engine_record("engine_sequential".into(), stat, cfg));
    for &grain in &cfg.grains {
        let opts = KernelOptions::new().with_schedule(Schedule::Dynamic { grain });
        let stat = measure(cfg.protocol, || {
            std::hint::black_box(engine.run_batch_with(&plan, &opts, &requests).unwrap());
        });
        push(engine_record(format!("engine_batched_g{grain}"), stat, cfg));
    }

    (records, delta)
}

/// The noop-sweep grain with the lowest mean launch time — the
/// measurement behind the default `Schedule::Dynamic` grain.
pub fn best_noop_grain(records: &[Record]) -> Option<(usize, f64)> {
    records
        .iter()
        .filter(|r| r.experiment == "substrates")
        .filter_map(|r| {
            let grain: usize = r.algo.strip_prefix("noop_dynamic_g")?.parse().ok()?;
            Some((grain, r.mean_s))
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_both_families_and_counts_launches() {
        let pool = ThreadPool::new(2);
        let engine = AttentionEngine::with_threads(2);
        let cfg = SubstratesConfig {
            n: 64,
            grains: vec![4, 16],
            n_seqs: 2,
            seq_len: 16,
            dk: 4,
            window: 2,
            protocol: Protocol {
                warmup: 1,
                iters: 2,
            },
            seed: 7,
        };
        let mut streamed = 0usize;
        let (records, delta) = run_substrates(&pool, &engine, &cfg, |_| streamed += 1);
        assert_eq!(records.len(), streamed);
        // 2 dynamic grains + static, then batched + sequential + 2 grains.
        assert_eq!(records.len(), 3 + 4);
        assert!(records.iter().all(|r| r.mean_s >= 0.0 && r.iters == 2));
        // Every noop launch pushes one job per worker through the injector.
        assert_eq!(delta.injector_pushes, 2 * 3 * 3);
        assert_eq!(delta.jobs_executed, delta.injector_pushes);
        let best = best_noop_grain(&records).expect("dynamic noop cases exist");
        assert!(cfg.grains.contains(&best.0));
    }
}
