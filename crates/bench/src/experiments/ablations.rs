//! Design-choice ablations called out in DESIGN.md §3 (not in the paper):
//!
//! - **A1** COO row-bound search: the paper's linear prefix scan vs binary
//!   search — quantifies how much of COO's Fig. 3 pathology is the search;
//! - **A2** block scheduling on the imbalanced global mask: static
//!   contiguous vs CUDA-like block-cyclic vs dynamic work-sharing — the
//!   "slowest block" phenomenon of Section V-C;
//! - **A3** FlashAttention K/V tile size;
//! - **A4** generic `pattern_attention` vs the specialized local kernel —
//!   the cost of neighbor enumeration through a trait object.

use crate::args::Scale;
use crate::protocol::{measure_auto, Protocol};
use crate::report::Record;
use gpa_core::{
    flash_attention_tiled, pattern_attention, AttentionEngine, AttentionKernel, AttentionPlan,
    AttentionRequest, CooSearch, KernelOptions,
};
use gpa_masks::{global_count_for_sparsity, GlobalSet, LocalWindow, MaskPattern};
use gpa_parallel::Schedule;
use gpa_tensor::init::qkv;
use gpa_tensor::Matrix;

/// Ablation study configuration.
#[derive(Clone, Debug)]
pub struct AblationConfig {
    /// Context length for A1/A2/A4.
    pub l: usize,
    /// Context length for A3 (dense flash).
    pub l_flash: usize,
    /// Embedding dimension.
    pub dk: usize,
    /// COO sparsity sweep for A1.
    pub coo_sfs: Vec<f64>,
    /// Global-mask sparsity for A2.
    pub global_sf: f64,
    /// Tile sizes for A3.
    pub tiles: Vec<usize>,
    /// Measurement protocol ceiling.
    pub protocol: Protocol,
    /// Per-case budget (seconds).
    pub budget_s: f64,
    /// Workload seed.
    pub seed: u64,
}

impl AblationConfig {
    /// Configuration for a CLI scale.
    pub fn for_scale(scale: Scale) -> AblationConfig {
        match scale {
            Scale::Quick => AblationConfig {
                l: 256,
                l_flash: 512,
                dk: 32,
                coo_sfs: vec![0.2],
                global_sf: 0.05,
                tiles: vec![16, 64],
                protocol: Protocol {
                    warmup: 1,
                    iters: 2,
                },
                budget_s: 3.0,
                seed: 0x5EED,
            },
            Scale::Default | Scale::Paper => AblationConfig {
                l: 1024,
                l_flash: 4096,
                dk: 64,
                coo_sfs: vec![0.4, 0.1, 0.01],
                global_sf: 0.02,
                tiles: vec![8, 16, 32, 64, 128, 256],
                protocol: Protocol::cpu_default(),
                budget_s: 10.0,
                seed: 0x5EED,
            },
        }
    }
}

fn record(
    experiment: &str,
    algo: String,
    l: usize,
    dk: usize,
    sf: f64,
    stat: crate::protocol::BenchStat,
    note: String,
) -> Record {
    Record {
        experiment: experiment.into(),
        algo,
        l,
        dk,
        sf_target: sf,
        sf_achieved: f64::NAN,
        mean_s: stat.mean,
        min_s: stat.min,
        max_s: stat.max,
        std_s: stat.std,
        iters: stat.iters,
        note,
    }
}

/// Run all four ablations; streams records through `on_record`. A1/A2 run
/// as compiled engine plans (A2 sweeps launch schedules through
/// [`AttentionEngine::run_batch_with`]); A3/A4 study internals below the
/// plan layer and use the engine's pool escape hatch.
pub fn run_ablations(
    engine: &AttentionEngine,
    cfg: &AblationConfig,
    mut on_record: impl FnMut(&Record),
) -> Vec<Record> {
    let mut records = Vec::new();
    let pool = engine.pool();
    let opts = KernelOptions::new();
    let (q, k, v): (Matrix<f32>, _, _) = qkv(cfg.l, cfg.dk, cfg.seed);

    // --- A1: COO search strategy ---------------------------------------
    for &sf in &cfg.coo_sfs {
        let window = gpa_masks::local_window_for_sparsity(cfg.l, sf);
        let mask = LocalWindow::new(cfg.l, window).to_coo();
        for (search, name) in [
            (CooSearch::Linear, "COO linear search"),
            (CooSearch::Binary, "COO binary search"),
        ] {
            let plan = AttentionPlan::single(AttentionKernel::Coo(&mask, search))
                .expect("coo plan compiles");
            let stat = measure_auto(cfg.protocol, cfg.budget_s, || {
                std::hint::black_box(engine.run(&plan, &q, &k, &v).unwrap());
            });
            let rec = record(
                "ablation_a1",
                name.into(),
                cfg.l,
                cfg.dk,
                sf,
                stat,
                String::new(),
            );
            on_record(&rec);
            records.push(rec);
        }
    }

    // --- A2: scheduling on the global (imbalanced) mask ------------------
    let g = global_count_for_sparsity(cfg.l, cfg.global_sf);
    let globals = GlobalSet::evenly_spaced(cfg.l, g);
    let global_plan = AttentionPlan::single(AttentionKernel::Global {
        globals: &globals,
        n_sub: 0,
    })
    .expect("global plan compiles");
    for (schedule, name) in [
        (Schedule::StaticContiguous, "Global / static-contiguous"),
        (Schedule::cuda_like(), "Global / block-cyclic"),
        (Schedule::Dynamic { grain: 4 }, "Global / dynamic"),
    ] {
        let sched_opts = KernelOptions::new().with_schedule(schedule);
        let stat = measure_auto(cfg.protocol, cfg.budget_s, || {
            std::hint::black_box(
                engine
                    .run_batch_with(
                        &global_plan,
                        &sched_opts,
                        &[AttentionRequest::new(&q, &k, &v)],
                    )
                    .unwrap(),
            );
        });
        let rec = record(
            "ablation_a2",
            name.into(),
            cfg.l,
            cfg.dk,
            cfg.global_sf,
            stat,
            format!("{} global tokens", globals.len()),
        );
        on_record(&rec);
        records.push(rec);
    }

    // --- A3: flash tile size ---------------------------------------------
    let (qf, kf, vf): (Matrix<f32>, _, _) = qkv(cfg.l_flash, cfg.dk, cfg.seed ^ 1);
    for &tile in &cfg.tiles {
        let stat = measure_auto(cfg.protocol, cfg.budget_s, || {
            std::hint::black_box(flash_attention_tiled(pool, &qf, &kf, &vf, tile, &opts).unwrap());
        });
        let rec = record(
            "ablation_a3",
            format!("Flash tile={tile}"),
            cfg.l_flash,
            cfg.dk,
            f64::NAN,
            stat,
            String::new(),
        );
        on_record(&rec);
        records.push(rec);
    }

    // --- A4: generic pattern driver vs specialized local kernel ----------
    let window = gpa_masks::local_window_for_sparsity(cfg.l, 0.05);
    let pattern = LocalWindow::new(cfg.l, window);
    let stat = measure_auto(cfg.protocol, cfg.budget_s, || {
        std::hint::black_box(pattern_attention(pool, &pattern, &q, &k, &v, &opts).unwrap());
    });
    let rec = record(
        "ablation_a4",
        "pattern_attention (generic)".into(),
        cfg.l,
        cfg.dk,
        0.05,
        stat,
        String::new(),
    );
    on_record(&rec);
    records.push(rec);
    let local_plan =
        AttentionPlan::single(AttentionKernel::Local { n: window }).expect("local plan compiles");
    let stat = measure_auto(cfg.protocol, cfg.budget_s, || {
        std::hint::black_box(engine.run(&local_plan, &q, &k, &v).unwrap());
    });
    let rec = record(
        "ablation_a4",
        "local_attention (specialized)".into(),
        cfg.l,
        cfg.dk,
        0.05,
        stat,
        String::new(),
    );
    on_record(&rec);
    records.push(rec);

    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ablations_emit_records() {
        let engine = AttentionEngine::with_threads(2);
        let cfg = AblationConfig::for_scale(Scale::Quick);
        let records = run_ablations(&engine, &cfg, |_| {});
        // A1: 1 sf × 2; A2: 3; A3: 2 tiles; A4: 2.
        assert_eq!(records.len(), 2 + 3 + 2 + 2);
        for exp in ["ablation_a1", "ablation_a2", "ablation_a3", "ablation_a4"] {
            assert!(records.iter().any(|r| r.experiment == exp), "missing {exp}");
        }
        assert!(records.iter().all(|r| r.mean_s > 0.0));
    }

    #[test]
    fn binary_search_beats_linear_on_large_coo() {
        // With enough rows the prefix scan's O(L·nnz) cost must dominate.
        // dk is kept tiny so per-edge arithmetic cannot mask the search.
        let engine = AttentionEngine::with_threads(4);
        let cfg = AblationConfig {
            l: 2048,
            l_flash: 256,
            dk: 4,
            coo_sfs: vec![0.1],
            global_sf: 0.05,
            tiles: vec![64],
            protocol: Protocol {
                warmup: 1,
                iters: 3,
            },
            budget_s: 30.0,
            seed: 2,
        };
        let records = run_ablations(&engine, &cfg, |_| {});
        let linear = records
            .iter()
            .find(|r| r.algo == "COO linear search")
            .unwrap()
            .mean_s;
        let binary = records
            .iter()
            .find(|r| r.algo == "COO binary search")
            .unwrap()
            .mean_s;
        assert!(
            linear > binary * 1.5,
            "linear {linear} should be ≫ binary {binary}"
        );
    }
}
