//! Table III — long-context runtimes: FlashAttention vs the local kernel vs
//! CSR, with sparsity following the LongNet schedule `Sf = 2730/L`
//! (Section II-D), the regime where the paper reports its headline 4.46×
//! and 51.06× speedups.
//!
//! Paper ladder: `L ∈ {1.6M, 8M, 16M, 160M}` (FP16, A100). CSR drops its
//! mask sparsity at the top of the ladder "due to memory restrictions" —
//! reproduced here with an explicit nnz cap.

use crate::args::Scale;
use crate::protocol::{measure_auto, Protocol};
use crate::report::Record;
use gpa_core::{AttentionEngine, AttentionKernel, AttentionPlan};
use gpa_masks::{local_window_for_sparsity, longnet_sparsity_factor, LocalWindow, MaskPattern};
use gpa_tensor::init::qkv;
use gpa_tensor::Matrix;

/// Ladder configuration for Table III.
#[derive(Clone, Debug)]
pub struct Table3Config {
    /// Context lengths (rows of the table).
    pub ls: Vec<usize>,
    /// Embedding dimension.
    pub dk: usize,
    /// FlashAttention measured up to here; beyond, extrapolated `O(L²)`.
    pub flash_max_l: usize,
    /// CSR materialization capped at this many non-zeros (the paper's
    /// "memory restrictions"); the sparsity is raised to fit.
    pub csr_max_nnz: usize,
    /// Measurement protocol ceiling.
    pub protocol: Protocol,
    /// Per-case budget (seconds).
    pub budget_s: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Table3Config {
    /// Configuration for a CLI scale.
    pub fn for_scale(scale: Scale) -> Table3Config {
        match scale {
            Scale::Quick => Table3Config {
                ls: vec![4_096, 16_384],
                dk: 32,
                flash_max_l: 4_096,
                csr_max_nnz: 4_000_000,
                protocol: Protocol {
                    warmup: 1,
                    iters: 2,
                },
                budget_s: 5.0,
                seed: 0x5EED,
            },
            Scale::Default => Table3Config {
                ls: vec![8_192, 32_768, 131_072],
                dk: 64,
                flash_max_l: 16_384,
                csr_max_nnz: 120_000_000,
                protocol: Protocol::cpu_default(),
                budget_s: 30.0,
                seed: 0x5EED,
            },
            Scale::Paper => Table3Config {
                ls: vec![1_600_000, 8_000_000, 16_000_000, 160_000_000],
                dk: 64,
                flash_max_l: 2_097_152,
                csr_max_nnz: 10_000_000_000,
                protocol: Protocol::paper(),
                budget_s: f64::INFINITY,
                seed: 0x5EED,
            },
        }
    }
}

/// Run the ladder; streams records through `on_record`. Each rung's
/// algorithms compile to engine plans reused across iterations.
pub fn run_table3(
    engine: &AttentionEngine,
    cfg: &Table3Config,
    mut on_record: impl FnMut(&Record),
) -> Vec<Record> {
    let mut records = Vec::new();
    let flash_plan = AttentionPlan::single(AttentionKernel::Flash).expect("flash plan compiles");
    let mut flash_ref: Option<(usize, f64)> = None;

    for &l in &cfg.ls {
        let sf = longnet_sparsity_factor(l);
        let (q, k, v): (Matrix<f32>, _, _) = qkv(l, cfg.dk, cfg.seed);

        // FlashAttention (dense).
        let rec = if l <= cfg.flash_max_l {
            let stat = measure_auto(cfg.protocol, cfg.budget_s, || {
                std::hint::black_box(engine.run(&flash_plan, &q, &k, &v).unwrap());
            });
            flash_ref = Some((l, stat.mean));
            Record {
                experiment: "table3".into(),
                algo: "FlashAttention".into(),
                l,
                dk: cfg.dk,
                sf_target: f64::NAN,
                sf_achieved: 1.0,
                mean_s: stat.mean,
                min_s: stat.min,
                max_s: stat.max,
                std_s: stat.std,
                iters: stat.iters,
                note: String::new(),
            }
        } else {
            let (l0, t0) = flash_ref.expect("ladder must start below flash_max_l");
            Record {
                experiment: "table3".into(),
                algo: "FlashAttention".into(),
                l,
                dk: cfg.dk,
                sf_target: f64::NAN,
                sf_achieved: 1.0,
                mean_s: t0 * (l as f64 / l0 as f64).powi(2),
                min_s: f64::NAN,
                max_s: f64::NAN,
                std_s: f64::NAN,
                iters: 0,
                note: format!("estimated from L={l0} via O(L^2) work scaling"),
            }
        };
        on_record(&rec);
        records.push(rec);

        // Local kernel at the LongNet sparsity schedule.
        let window = local_window_for_sparsity(l, sf);
        let local_plan = AttentionPlan::single(AttentionKernel::Local { n: window })
            .expect("local plan compiles");
        let stat = measure_auto(cfg.protocol, cfg.budget_s, || {
            std::hint::black_box(engine.run(&local_plan, &q, &k, &v).unwrap());
        });
        let rec = Record {
            experiment: "table3".into(),
            algo: "Local".into(),
            l,
            dk: cfg.dk,
            sf_target: sf,
            sf_achieved: LocalWindow::new(l, window).sparsity_factor(),
            mean_s: stat.mean,
            min_s: stat.min,
            max_s: stat.max,
            std_s: stat.std,
            iters: stat.iters,
            note: format!("window={window}"),
        };
        on_record(&rec);
        records.push(rec);

        // CSR with the explicit mask, sparsity capped by materialization
        // memory exactly as the paper's footnote describes.
        let target_nnz = (sf * l as f64 * l as f64) as usize;
        let (csr_sf, csr_note) = if target_nnz > cfg.csr_max_nnz {
            let capped = cfg.csr_max_nnz as f64 / (l as f64 * l as f64);
            (
                capped,
                "sparsity raised: mask memory restriction".to_string(),
            )
        } else {
            (sf, String::new())
        };
        let csr_window = local_window_for_sparsity(l, csr_sf);
        let mask = LocalWindow::new(l, csr_window).to_csr();
        let achieved = mask.sparsity_factor();
        let csr_plan =
            AttentionPlan::single(AttentionKernel::Csr(&mask)).expect("csr plan compiles");
        let stat = measure_auto(cfg.protocol, cfg.budget_s, || {
            std::hint::black_box(engine.run(&csr_plan, &q, &k, &v).unwrap());
        });
        let rec = Record {
            experiment: "table3".into(),
            algo: "CSR".into(),
            l,
            dk: cfg.dk,
            sf_target: csr_sf,
            sf_achieved: achieved,
            mean_s: stat.mean,
            min_s: stat.min,
            max_s: stat.max,
            std_s: stat.std,
            iters: stat.iters,
            note: csr_note,
        };
        on_record(&rec);
        records.push(rec);
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::speedup;

    #[test]
    fn ladder_produces_three_algorithms_per_length() {
        let engine = AttentionEngine::with_threads(2);
        let cfg = Table3Config::for_scale(Scale::Quick);
        let records = run_table3(&engine, &cfg, |_| {});
        assert_eq!(records.len(), 2 * 3);
        for algo in ["FlashAttention", "Local", "CSR"] {
            assert_eq!(records.iter().filter(|r| r.algo == algo).count(), 2);
        }
    }

    #[test]
    fn sparse_advantage_grows_with_context() {
        // The Table III trend: local's speedup over flash increases with L
        // under the LongNet schedule (flash O(L²) vs local O(2730·L)).
        let engine = AttentionEngine::with_threads(4);
        let cfg = Table3Config {
            ls: vec![2_048, 16_384],
            dk: 32,
            flash_max_l: 16_384,
            csr_max_nnz: 50_000_000,
            protocol: Protocol {
                warmup: 1,
                iters: 2,
            },
            budget_s: 20.0,
            seed: 5,
        };
        let records = run_table3(&engine, &cfg, |_| {});
        let mean = |algo: &str, l: usize| {
            records
                .iter()
                .find(|r| r.algo == algo && r.l == l)
                .unwrap()
                .mean_s
        };
        let speedup_small = speedup(mean("FlashAttention", 2_048), mean("Local", 2_048));
        let speedup_large = speedup(mean("FlashAttention", 16_384), mean("Local", 16_384));
        assert!(
            speedup_large > speedup_small,
            "speedup must grow: {speedup_small:.2} → {speedup_large:.2}"
        );
    }

    #[test]
    fn csr_nnz_cap_engages() {
        let engine = AttentionEngine::with_threads(2);
        let cfg = Table3Config {
            ls: vec![8_192],
            dk: 16,
            flash_max_l: 8_192,
            csr_max_nnz: 100_000, // force the cap (longnet nnz = 2730·L ≈ 22M)
            protocol: Protocol {
                warmup: 0,
                iters: 1,
            },
            budget_s: 10.0,
            seed: 1,
        };
        let records = run_table3(&engine, &cfg, |_| {});
        let csr = records.iter().find(|r| r.algo == "CSR").unwrap();
        assert!(csr.note.contains("memory restriction"));
        assert!(csr.sf_achieved < longnet_sparsity_factor(8_192));
    }
}
