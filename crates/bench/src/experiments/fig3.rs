//! Fig. 3 — microbenchmarks: runtime vs sparsity factor for all six graph
//! kernels and the masked-SDP baseline, swept over context length and
//! embedding dimension.
//!
//! Paper setup (Section V-C): `L ∈ {8192, 16384, 24576}`,
//! `dk ∈ {64, 128, 256}`, `Sf ∈ (0, 1]`; dilation 1 for both dilated
//! kernels; window/block fitted to the target `Sf`; COO restricted to the
//! smallest `L` and `Sf ≤ 0.4` "due to its long runtime".

use crate::args::Scale;
use crate::kernels::{fitted_case, AlgoId};
use crate::protocol::{measure_auto, Protocol};
use crate::report::Record;
use gpa_core::AttentionEngine;
use gpa_tensor::init::qkv;
use gpa_tensor::Matrix;

/// Sweep configuration for Fig. 3.
#[derive(Clone, Debug)]
pub struct Fig3Config {
    /// Context lengths (one plot column per value).
    pub ls: Vec<usize>,
    /// Embedding dimensions (one color per value).
    pub dks: Vec<usize>,
    /// Target sparsity factors (x-axis), descending.
    pub sfs: Vec<f64>,
    /// COO runs only at `L ≤ coo_max_l`.
    pub coo_max_l: usize,
    /// COO runs only at `Sf ≤ coo_max_sf`.
    pub coo_max_sf: f64,
    /// Measurement protocol ceiling.
    pub protocol: Protocol,
    /// Per-case time budget in seconds (adaptive iteration trimming).
    pub budget_s: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Fig3Config {
    /// Configuration for a CLI scale.
    pub fn for_scale(scale: Scale) -> Fig3Config {
        match scale {
            Scale::Quick => Fig3Config {
                ls: vec![256],
                dks: vec![32],
                sfs: vec![0.1, 0.01],
                coo_max_l: 256,
                coo_max_sf: 0.4,
                protocol: Protocol {
                    warmup: 1,
                    iters: 2,
                },
                budget_s: 2.0,
                seed: 0x5EED,
            },
            Scale::Default => Fig3Config {
                ls: vec![512, 1024, 2048],
                dks: vec![64, 128, 256],
                sfs: vec![1.0, 0.4, 0.1, 0.04, 0.01, 0.004, 0.001, 4e-4, 1e-4],
                coo_max_l: 512,
                coo_max_sf: 0.4,
                protocol: Protocol::cpu_default(),
                budget_s: 8.0,
                seed: 0x5EED,
            },
            Scale::Paper => Fig3Config {
                ls: vec![8192, 16384, 24576],
                dks: vec![64, 128, 256],
                sfs: vec![1.0, 0.4, 0.1, 0.04, 0.01, 0.004, 0.001, 4e-4, 1e-4],
                coo_max_l: 8192,
                coo_max_sf: 0.4,
                protocol: Protocol::paper(),
                budget_s: f64::INFINITY,
                seed: 0x5EED,
            },
        }
    }
}

/// Run the sweep, streaming each record to `on_record` as it is produced.
/// Every case compiles to an engine plan once and reuses it across the
/// protocol's warm-up and timed iterations.
pub fn run_fig3(
    engine: &AttentionEngine,
    cfg: &Fig3Config,
    mut on_record: impl FnMut(&Record),
) -> Vec<Record> {
    let mut records = Vec::new();

    for &l in &cfg.ls {
        for &dk in &cfg.dks {
            let (q, k, v): (Matrix<f32>, _, _) = qkv(l, dk, cfg.seed);

            // The SDP baseline's runtime is Sf-independent (it always does
            // the dense computation), so measure it once per (L, dk) and
            // replicate the row across the sweep — the flat line of Fig. 3.
            let sdp_case = fitted_case(AlgoId::Sdp, l, *cfg.sfs.first().unwrap_or(&1.0));
            let sdp_plan = sdp_case.plan();
            let sdp_stat = measure_auto(cfg.protocol, cfg.budget_s, || {
                std::hint::black_box(engine.run(&sdp_plan, &q, &k, &v).unwrap());
            });
            for &sf in &cfg.sfs {
                let rec = Record {
                    experiment: "fig3".into(),
                    algo: sdp_case.name().into(),
                    l,
                    dk,
                    sf_target: sf,
                    sf_achieved: 1.0,
                    mean_s: sdp_stat.mean,
                    min_s: sdp_stat.min,
                    max_s: sdp_stat.max,
                    std_s: sdp_stat.std,
                    iters: sdp_stat.iters,
                    note: "dense: Sf-independent, measured once per (L,dk)".into(),
                };
                on_record(&rec);
                records.push(rec);
            }

            for &sf in &cfg.sfs {
                for algo in [
                    AlgoId::Coo,
                    AlgoId::Csr,
                    AlgoId::Global,
                    AlgoId::Local,
                    AlgoId::Dilated1d,
                    AlgoId::Dilated2d,
                ] {
                    if algo == AlgoId::Coo && (l > cfg.coo_max_l || sf > cfg.coo_max_sf) {
                        continue; // the paper's COO restriction
                    }
                    let case = fitted_case(algo, l, sf);
                    let plan = case.plan();
                    let stat = measure_auto(cfg.protocol, cfg.budget_s, || {
                        std::hint::black_box(engine.run(&plan, &q, &k, &v).unwrap());
                    });
                    let rec = Record {
                        experiment: "fig3".into(),
                        algo: case.name().into(),
                        l,
                        dk,
                        sf_target: sf,
                        sf_achieved: case.achieved_sf(l),
                        mean_s: stat.mean,
                        min_s: stat.min,
                        max_s: stat.max,
                        std_s: stat.std,
                        iters: stat.iters,
                        note: String::new(),
                    };
                    on_record(&rec);
                    records.push(rec);
                }
            }
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_expected_grid() {
        let engine = AttentionEngine::with_threads(2);
        let cfg = Fig3Config::for_scale(Scale::Quick);
        let mut streamed = 0usize;
        let records = run_fig3(&engine, &cfg, |_| streamed += 1);
        assert_eq!(records.len(), streamed);
        // 1 L × 1 dk × 2 sf × (SDP + 6 kernels, COO allowed at both sf).
        assert_eq!(records.len(), 2 * 7);
        // All algorithms present.
        for name in [
            "PyTorch SDP (Masked)",
            "COO",
            "CSR",
            "Local",
            "Dilated-1D",
            "Dilated-2D",
            "Global",
        ] {
            assert!(records.iter().any(|r| r.algo == name), "missing {name}");
        }
        // Runtime sanity: all positive.
        assert!(records.iter().all(|r| r.mean_s > 0.0));
    }

    #[test]
    fn graph_kernels_get_faster_with_sparsity_sdp_does_not() {
        let engine = AttentionEngine::with_threads(4);
        let cfg = Fig3Config {
            ls: vec![512],
            dks: vec![64],
            sfs: vec![0.5, 0.005],
            coo_max_l: 0, // skip COO for speed
            coo_max_sf: 0.0,
            protocol: Protocol {
                warmup: 1,
                iters: 3,
            },
            budget_s: 10.0,
            seed: 1,
        };
        let records = run_fig3(&engine, &cfg, |_| {});
        let mean_of = |algo: &str, sf: f64| {
            records
                .iter()
                .find(|r| r.algo == algo && (r.sf_target - sf).abs() < 1e-12)
                .map(|r| r.mean_s)
                .unwrap()
        };
        // CSR speeds up by roughly the sparsity ratio (allow wide margin).
        assert!(
            mean_of("CSR", 0.5) > mean_of("CSR", 0.005) * 3.0,
            "CSR: {} vs {}",
            mean_of("CSR", 0.5),
            mean_of("CSR", 0.005)
        );
        // SDP is flat by construction (single measurement replicated).
        assert_eq!(
            mean_of("PyTorch SDP (Masked)", 0.5),
            mean_of("PyTorch SDP (Masked)", 0.005)
        );
    }
}
