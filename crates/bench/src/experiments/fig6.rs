//! Fig. 6 — runtimes on the published transformer masks: Longformer
//! (local + global), Longformer (dilated + global), and BigBird
//! (local + global + random), each as masked SDP vs sequential kernel
//! composition vs a single CSR call.
//!
//! Paper setup (Section V-F): local size 50 per direction, 3 global tokens,
//! dilation 2 (effective local size 100), random `Sf = 0.001`,
//! `L ∈ {30k, 35k, 40k, 45k}`.

use crate::args::Scale;
use crate::protocol::{measure_auto, Protocol};
use crate::report::Record;
use gpa_core::{AttentionEngine, AttentionKernel, AttentionPlan};
use gpa_masks::{
    bigbird, longformer, longformer_dilated, GlobalMinusLocal, GlobalSet, LocalWindow, MaskPattern,
    RandomUniform,
};
use gpa_sparse::CsrMask;
use gpa_tensor::init::qkv;
use gpa_tensor::Matrix;

/// Sweep configuration for Fig. 6.
#[derive(Clone, Debug)]
pub struct Fig6Config {
    /// Context lengths (x-axis).
    pub ls: Vec<usize>,
    /// Embedding dimension.
    pub dk: usize,
    /// Local window per direction (paper: 50).
    pub window: usize,
    /// Number of global tokens (paper: 3).
    pub n_globals: usize,
    /// Dilation factor for the dilated variant (paper: 2).
    pub dilation: usize,
    /// Random-attention sparsity for BigBird (paper: 0.001).
    pub random_sf: f64,
    /// Measurement protocol ceiling.
    pub protocol: Protocol,
    /// Per-case budget (seconds).
    pub budget_s: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Fig6Config {
    /// Configuration for a CLI scale.
    pub fn for_scale(scale: Scale) -> Fig6Config {
        match scale {
            Scale::Quick => Fig6Config {
                ls: vec![512, 1024],
                dk: 32,
                window: 10,
                n_globals: 3,
                dilation: 2,
                random_sf: 0.01,
                protocol: Protocol {
                    warmup: 1,
                    iters: 2,
                },
                budget_s: 3.0,
                seed: 0x5EED,
            },
            Scale::Default => Fig6Config {
                ls: vec![4_096, 8_192, 12_288, 16_384],
                dk: 64,
                window: 50,
                n_globals: 3,
                dilation: 2,
                random_sf: 0.001,
                protocol: Protocol::cpu_default(),
                budget_s: 20.0,
                seed: 0x5EED,
            },
            Scale::Paper => Fig6Config {
                ls: vec![30_000, 35_000, 40_000, 45_000],
                dk: 64,
                window: 50,
                n_globals: 3,
                dilation: 2,
                random_sf: 0.001,
                protocol: Protocol::paper(),
                budget_s: f64::INFINITY,
                seed: 0x5EED,
            },
        }
    }
}

/// The three mask scenarios of Fig. 6.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig6Mask {
    /// Longformer: local + global.
    LongformerLocalGlobal,
    /// Longformer: dilated local + global.
    LongformerDilatedGlobal,
    /// BigBird: local + global + random.
    BigBird,
}

impl Fig6Mask {
    /// All scenarios in paper order.
    pub const ALL: [Fig6Mask; 3] = [
        Fig6Mask::LongformerLocalGlobal,
        Fig6Mask::LongformerDilatedGlobal,
        Fig6Mask::BigBird,
    ];

    /// Plot title.
    pub fn label(self) -> &'static str {
        match self {
            Fig6Mask::LongformerLocalGlobal => "Longformer (Local + Global)",
            Fig6Mask::LongformerDilatedGlobal => "Longformer (Dilated + Global)",
            Fig6Mask::BigBird => "BigBird (Local + Global + Random)",
        }
    }
}

#[allow(clippy::too_many_arguments)] // flat record fields, local helper
fn push_record(
    records: &mut Vec<Record>,
    on_record: &mut impl FnMut(&Record),
    mask: Fig6Mask,
    algo: &str,
    l: usize,
    dk: usize,
    sf: f64,
    stat: crate::protocol::BenchStat,
) {
    let rec = Record {
        experiment: "fig6".into(),
        algo: algo.into(),
        l,
        dk,
        sf_target: f64::NAN,
        sf_achieved: sf,
        mean_s: stat.mean,
        min_s: stat.min,
        max_s: stat.max,
        std_s: stat.std,
        iters: stat.iters,
        note: mask.label().into(),
    };
    on_record(&rec);
    records.push(rec);
}

/// Run all three mask scenarios; streams records through `on_record`.
/// Every series — including the sequential compositions — is compiled into
/// an [`AttentionPlan`] once per scenario and reused across iterations.
pub fn run_fig6(
    engine: &AttentionEngine,
    cfg: &Fig6Config,
    mut on_record: impl FnMut(&Record),
) -> Vec<Record> {
    let mut records = Vec::new();

    for &l in &cfg.ls {
        let (q, k, v): (Matrix<f32>, _, _) = qkv(l, cfg.dk, cfg.seed);
        let globals = GlobalSet::evenly_spaced(l, cfg.n_globals);
        let global_indices: Vec<usize> = globals.indices().iter().map(|&g| g as usize).collect();

        for mask in Fig6Mask::ALL {
            // Build the scenario's union mask (for SDP + single-CSR runs).
            let union_csr: CsrMask = match mask {
                Fig6Mask::LongformerLocalGlobal => {
                    longformer(l, cfg.window, global_indices.clone()).to_csr()
                }
                Fig6Mask::LongformerDilatedGlobal => {
                    longformer_dilated(l, cfg.window, cfg.dilation, global_indices.clone()).to_csr()
                }
                Fig6Mask::BigBird => bigbird(
                    l,
                    cfg.window,
                    global_indices.clone(),
                    cfg.random_sf,
                    cfg.seed ^ 0xB16B,
                )
                .to_csr(),
            };
            let sf = union_csr.sparsity_factor();
            let dense = gpa_sparse::DenseMask::from_csr(&union_csr);

            // Masked SDP baseline.
            let sdp_plan = AttentionPlan::single(AttentionKernel::SdpMasked(&dense))
                .expect("sdp plan compiles");
            let stat = measure_auto(cfg.protocol, cfg.budget_s, || {
                std::hint::black_box(engine.run(&sdp_plan, &q, &k, &v).unwrap());
            });
            push_record(
                &mut records,
                &mut on_record,
                mask,
                "SDP (Masked)",
                l,
                cfg.dk,
                sf,
                stat,
            );

            // Single CSR call over the union.
            let csr_plan =
                AttentionPlan::single(AttentionKernel::Csr(&union_csr)).expect("csr plan compiles");
            let stat = measure_auto(cfg.protocol, cfg.budget_s, || {
                std::hint::black_box(engine.run(&csr_plan, &q, &k, &v).unwrap());
            });
            push_record(
                &mut records,
                &mut on_record,
                mask,
                "CSR",
                l,
                cfg.dk,
                sf,
                stat,
            );

            // Sequential kernel compositions (the paper's third series).
            match mask {
                Fig6Mask::LongformerLocalGlobal => {
                    let plan = engine
                        .compile(&[
                            AttentionKernel::Local { n: cfg.window },
                            AttentionKernel::Global {
                                globals: &globals,
                                n_sub: cfg.window,
                            },
                        ])
                        .expect("Loc + Glo plan compiles");
                    let stat = measure_auto(cfg.protocol, cfg.budget_s, || {
                        std::hint::black_box(engine.run(&plan, &q, &k, &v).unwrap());
                    });
                    push_record(
                        &mut records,
                        &mut on_record,
                        mask,
                        "Loc + Glo",
                        l,
                        cfg.dk,
                        sf,
                        stat,
                    );
                }
                Fig6Mask::LongformerDilatedGlobal => {
                    // Paper runs only SDP vs CSR for this panel.
                }
                Fig6Mask::BigBird => {
                    // Random edges not already covered by local ∪ global.
                    let covered = LocalWindow::new(l, cfg.window)
                        .to_csr()
                        .union(&GlobalMinusLocal::new(globals.clone(), cfg.window).to_csr());
                    let random_rest = RandomUniform::new(l, cfg.random_sf, cfg.seed ^ 0xB16B)
                        .to_csr()
                        .difference(&covered);
                    let plan = engine
                        .compile(&[
                            AttentionKernel::Local { n: cfg.window },
                            AttentionKernel::Global {
                                globals: &globals,
                                n_sub: cfg.window,
                            },
                            AttentionKernel::Csr(&random_rest),
                        ])
                        .expect("Loc + Glo + CSR plan compiles");
                    let stat = measure_auto(cfg.protocol, cfg.budget_s, || {
                        std::hint::black_box(engine.run(&plan, &q, &k, &v).unwrap());
                    });
                    push_record(
                        &mut records,
                        &mut on_record,
                        mask,
                        "Loc + Glo + CSR",
                        l,
                        cfg.dk,
                        sf,
                        stat,
                    );
                }
            }
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_tensor::paper_allclose;

    #[test]
    fn quick_run_covers_all_scenarios_and_series() {
        let engine = AttentionEngine::with_threads(2);
        let cfg = Fig6Config::for_scale(Scale::Quick);
        let records = run_fig6(&engine, &cfg, |_| {});
        // Per L: LF-LG (3 series) + LF-DG (2) + BigBird (3) = 8.
        assert_eq!(records.len(), 2 * 8);
        for label in [
            "Longformer (Local + Global)",
            "Longformer (Dilated + Global)",
            "BigBird (Local + Global + Random)",
        ] {
            assert!(records.iter().any(|r| r.note == label));
        }
        assert!(records.iter().any(|r| r.algo == "Loc + Glo"));
        assert!(records.iter().any(|r| r.algo == "Loc + Glo + CSR"));
    }

    #[test]
    fn composed_and_csr_series_compute_identical_attention() {
        // The benchmark's series must be numerically interchangeable — the
        // paper verified "outputs of each approach were deemed identical".
        let engine = AttentionEngine::with_threads(2);
        let l = 256;
        let cfg = Fig6Config {
            ls: vec![l],
            dk: 16,
            window: 8,
            n_globals: 3,
            dilation: 2,
            random_sf: 0.01,
            protocol: Protocol {
                warmup: 0,
                iters: 1,
            },
            budget_s: 5.0,
            seed: 11,
        };
        let (q, k, v): (Matrix<f64>, _, _) = qkv(l, cfg.dk, cfg.seed);
        let globals = GlobalSet::evenly_spaced(l, cfg.n_globals);
        let gi: Vec<usize> = globals.indices().iter().map(|&g| g as usize).collect();

        let union = longformer(l, cfg.window, gi).to_csr();
        let csr_plan = engine.compile(&[AttentionKernel::Csr(&union)]).unwrap();
        let via_csr = engine.run(&csr_plan, &q, &k, &v).unwrap();
        let composed_plan = engine
            .compile(&[
                AttentionKernel::Local { n: cfg.window },
                AttentionKernel::Global {
                    globals: &globals,
                    n_sub: cfg.window,
                },
            ])
            .unwrap();
        let via_composed = engine.run(&composed_plan, &q, &k, &v).unwrap();
        let dense = gpa_sparse::DenseMask::from_csr(&union);
        let sdp_plan = engine
            .compile(&[AttentionKernel::SdpMasked(&dense)])
            .unwrap();
        let via_sdp = engine.run(&sdp_plan, &q, &k, &v).unwrap();
        assert!(paper_allclose(&via_composed, &via_csr));
        assert!(paper_allclose(&via_sdp, &via_csr));
    }
}
