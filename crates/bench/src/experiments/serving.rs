//! Serving throughput — continuous batching vs one-sequence-at-a-time as
//! offered load grows, plus a page-pressure sweep over shrinking KV pools.
//!
//! One seeded workload per offered-load point (mixed prompt/decode
//! lengths, priorities, and arrival gaps) is served three ways:
//!
//! - **Continuous** — through `gpa-serve`'s [`Scheduler`] with the full
//!   page budget: every tick one batched launch carries all runnable
//!   prefill chunks and decode rows, so per-token launch overhead is paid
//!   once per tick. Wall-time samples are per-tick durations; the
//!   *tick-latency* percentiles (p50/p99 of submission→completion in
//!   virtual ticks) are simulation-deterministic per seed, so they live in
//!   the record's note and survive the regression join.
//! - **Sequential** — the naive baseline: each sequence served alone via
//!   chunked prefill plus per-token [`gpa_core::AttentionEngine`] decode
//!   steps, one launch per chunk/token. Wall-time samples are
//!   per-sequence durations.
//! - **PagePressure** — the same trace replayed against each reduced page
//!   budget in the sweep: requests whose full length exceeds the whole
//!   pool are rejected at submission, tight-but-feasible budgets force
//!   preempt-and-resume, and the note records the deterministic
//!   admitted/rejected counts and preemption-event total per point.
//!
//! Offered load is the mean arrival gap in ticks: `gap = 0` is a
//! saturating burst, large gaps approach the idle regime where batching
//! cannot help. The correctness claim (continuous outputs bitwise equal
//! the sequential serve, preempted or not) is enforced by
//! `tests/serving_sim.rs`; a spot-check also runs here under `cfg(test)`.

use crate::args::Scale;
use crate::report::Record;
use gpa_core::{AttentionEngine, AttentionKernel, AttentionPlan};
use gpa_serve::{
    generate_trace, sequential_reference, AdmissionMode, Completion, EvictionMode, Scheduler,
    ServeConfig, ServeError, TraceEvent, TraceSpec,
};
use std::time::Instant;

/// Sweep configuration for the serving-throughput experiment.
#[derive(Clone, Debug)]
pub struct ServingConfig {
    /// Mean inter-arrival gaps (ticks) to sweep — the offered-load axis,
    /// smaller is heavier.
    pub arrival_gaps: Vec<u64>,
    /// Reduced page budgets for the pressure sweep — each is replayed at
    /// every arrival gap. Budgets below the longest sequence's page need
    /// reject at submission; tight-but-feasible budgets preempt.
    pub page_budgets: Vec<usize>,
    /// Sequences per workload point.
    pub sequences: usize,
    /// Inclusive prompt-length range.
    pub prompt: (usize, usize),
    /// Inclusive generated-token range.
    pub decode: (usize, usize),
    /// Key/value dimension.
    pub dk: usize,
    /// Local-attention window per direction.
    pub window: usize,
    /// Scheduler admission policy.
    pub max_in_flight: usize,
    /// Full KV page budget for the throughput A/B.
    pub kv_pages: usize,
    /// Tokens per KV page.
    pub page_size: usize,
    /// Prefill chunk rows.
    pub prefill_chunk: usize,
    /// Context lengths for the Recompute-vs-Swap resume A/B (each must be
    /// a multiple of `page_size` so the victim's first decode token lands
    /// on a page boundary and the squeeze preempts deterministically).
    pub resume_lengths: Vec<usize>,
    /// Workload seed.
    pub seed: u64,
}

impl ServingConfig {
    /// Configuration for a CLI scale.
    pub fn for_scale(scale: Scale) -> ServingConfig {
        match scale {
            Scale::Quick => ServingConfig {
                arrival_gaps: vec![0, 2, 8],
                page_budgets: vec![2, 4, 8],
                sequences: 12,
                prompt: (8, 24),
                decode: (4, 8),
                dk: 16,
                window: 4,
                max_in_flight: 4,
                kv_pages: 32,
                page_size: 8,
                prefill_chunk: 8,
                resume_lengths: vec![64, 256],
                seed: 0x5EED,
            },
            Scale::Default => ServingConfig {
                arrival_gaps: vec![0, 4, 16],
                page_budgets: vec![4, 8, 32],
                sequences: 64,
                prompt: (64, 256),
                decode: (32, 64),
                dk: 64,
                window: 32,
                max_in_flight: 16,
                kv_pages: 256,
                page_size: 64,
                prefill_chunk: 64,
                resume_lengths: vec![256, 1024, 4096],
                seed: 0x5EED,
            },
            Scale::Paper => ServingConfig {
                arrival_gaps: vec![0, 8, 32],
                page_budgets: vec![8, 16, 64],
                sequences: 256,
                prompt: (256, 2048),
                decode: (64, 128),
                dk: 64,
                window: 64,
                max_in_flight: 32,
                kv_pages: 1024,
                page_size: 256,
                prefill_chunk: 256,
                resume_lengths: vec![1024, 4096, 16384],
                seed: 0x5EED,
            },
        }
    }

    fn scheduler_config(&self, kv_pages: usize) -> ServeConfig {
        ServeConfig {
            max_in_flight: self.max_in_flight,
            kv_pages,
            page_size: self.page_size,
            arrival_window: 0,
            prefill_chunk: self.prefill_chunk,
            admission: AdmissionMode::PagedUsage,
            eviction: EvictionMode::Recompute,
            swap_bytes: usize::MAX,
        }
    }

    fn trace_spec(&self, gap: u64) -> TraceSpec {
        TraceSpec {
            sequences: self.sequences,
            prompt: self.prompt,
            decode: self.decode,
            dk: self.dk,
            arrival_gap: (0, 2 * gap),
            priority_classes: 2,
            seed: self.seed ^ gap.wrapping_mul(0x9E37_79B9),
        }
    }
}

/// Percentile of already-sorted data by nearest-rank.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// One continuous-serving replay: wall-time samples plus the deterministic
/// virtual-clock outcome counters.
struct ContinuousRun {
    /// Per-tick wall-time samples.
    samples: Vec<f64>,
    /// Every completion, in completion order.
    completions: Vec<Completion<f32>>,
    /// Total tokens computed across completions.
    tokens: usize,
    /// Submissions rejected as [`ServeError::OverCapacity`] — sequences
    /// whose full length cannot fit the whole pool.
    rejected: usize,
    /// Preemption events over the replay (evict-and-resume cycles).
    preemptions: u64,
}

/// Serve one workload through the scheduler under the given page budget.
/// Over-capacity submissions are counted, not fatal — that is the
/// "rejected" side of the pressure sweep.
fn run_continuous(
    engine_threads: Option<usize>,
    cfg: &ServingConfig,
    kv_pages: usize,
    trace: &[TraceEvent<f32>],
) -> ContinuousRun {
    let engine = match engine_threads {
        Some(t) => AttentionEngine::with_threads(t),
        None => AttentionEngine::new(),
    };
    let mut scheduler: Scheduler<'static, f32> =
        Scheduler::new(engine, cfg.scheduler_config(kv_pages)).expect("valid scheduler config");
    let plan = scheduler
        .register_plan(
            AttentionPlan::single(AttentionKernel::Local { n: cfg.window })
                .expect("window plan compiles"),
        )
        .expect("implicit plans register");
    // Retarget the trace's plan ids at this scheduler's plan.
    let mut completions = Vec::new();
    let mut samples = Vec::new();
    let mut rejected = 0usize;
    let mut next = 0usize;
    while next < trace.len() || !scheduler.is_idle() {
        while next < trace.len() && trace[next].at <= scheduler.now() {
            let mut request = trace[next].request.clone();
            request.pattern = plan.into();
            match scheduler.submit(request) {
                Ok(_) => {}
                Err(ServeError::OverCapacity { .. }) => rejected += 1,
                Err(e) => panic!("trace requests are valid: {e}"),
            }
            next += 1;
        }
        let started = Instant::now();
        let report = scheduler.tick().expect("healthy workload ticks");
        samples.push(started.elapsed().as_secs_f64());
        completions.extend(report.completed);
    }
    let tokens = completions.iter().map(|c| c.output.rows()).sum();
    ContinuousRun {
        samples,
        completions,
        tokens,
        rejected,
        preemptions: scheduler.preemption_events(),
    }
}

/// Serve the same workload one sequence at a time (the pre-scheduler
/// serving loop); returns per-sequence wall-time samples and total tokens.
fn run_sequential(
    engine_threads: Option<usize>,
    cfg: &ServingConfig,
    trace: &[TraceEvent<f32>],
) -> (Vec<f64>, usize) {
    let engine = match engine_threads {
        Some(t) => AttentionEngine::with_threads(t),
        None => AttentionEngine::new(),
    };
    let plan = AttentionPlan::single(AttentionKernel::Local { n: cfg.window })
        .expect("window plan compiles");
    let mut samples = Vec::with_capacity(trace.len());
    let mut tokens = 0usize;
    for event in trace {
        let started = Instant::now();
        let out = sequential_reference(&engine, &plan, &event.request, cfg.prefill_chunk)
            .expect("healthy workload serves");
        samples.push(started.elapsed().as_secs_f64());
        tokens += out.rows();
        std::hint::black_box(out);
    }
    (samples, tokens)
}

/// One resume-latency measurement: preempt a single long-context victim
/// under a deterministic page squeeze, then time the tick that resumes
/// it. Returns per-iteration resume-tick durations.
///
/// The squeeze, for a context length `l` (a multiple of `page_size`, so
/// the victim's first decode token crosses a page boundary):
///
/// 1. a priority-1 **victim** (prompt `l`, `page_size` decode tokens) is
///    admitted alone and decodes its first token — it now holds
///    `l/page_size + 1` pages of a pool sized `l/page_size + 2`;
/// 2. a priority-0 **aggressor** (one-page prompt, one page of decode)
///    admits into the last free page; its first decode append finds the
///    free list empty and evicts the victim — the least urgent sequence;
/// 3. the aggressor drains; the pool reopens; the next tick resumes the
///    victim. That tick is the sample: under `Recompute` it re-extends
///    all `l + 2` retained K/V rows (`O(context)`), under `Swap` it
///    splices the parked cache's pages back (`O(pages held)`, no row
///    copies).
fn run_resume_ab(
    engine_threads: Option<usize>,
    cfg: &ServingConfig,
    l: usize,
    eviction: EvictionMode,
    iters: usize,
) -> Vec<f64> {
    assert!(l % cfg.page_size == 0, "resume length must be page-aligned");
    assert!(cfg.page_size >= 3, "the victim must decode mid-page");
    let pages = l / cfg.page_size;
    let mut samples = Vec::with_capacity(iters);
    for it in 0..iters {
        let engine = match engine_threads {
            Some(t) => AttentionEngine::with_threads(t),
            None => AttentionEngine::new(),
        };
        let config = ServeConfig {
            max_in_flight: 2,
            kv_pages: pages + 2,
            page_size: cfg.page_size,
            arrival_window: 0,
            prefill_chunk: cfg.prefill_chunk,
            admission: AdmissionMode::PagedUsage,
            eviction,
            swap_bytes: usize::MAX,
        };
        let mut scheduler: Scheduler<'static, f32> =
            Scheduler::new(engine, config).expect("valid resume A/B config");
        let plan = scheduler
            .register_plan(
                AttentionPlan::single(AttentionKernel::Local { n: cfg.window })
                    .expect("window plan compiles"),
            )
            .expect("implicit plans register");
        let submit = |s: &mut Scheduler<'static, f32>, priority, prompt, total, seed| {
            let (q, k, v) = gpa_tensor::init::qkv::<f32>(total, cfg.dk, seed);
            s.submit(gpa_serve::ServeRequest {
                pattern: plan.into(),
                priority,
                prompt,
                q,
                k,
                v,
            })
            .expect("resume A/B requests fit the pool")
        };
        let victim = submit(
            &mut scheduler,
            1,
            l,
            l + cfg.page_size,
            0xAB ^ (it as u64) << 8,
        );
        // Serve the victim alone until its first decode append takes the
        // boundary page; only then can the aggressor squeeze it out.
        while scheduler.kv_used_pages() < pages + 1 {
            scheduler.tick().expect("healthy victim ticks");
        }
        let _aggressor = submit(
            &mut scheduler,
            0,
            cfg.page_size,
            2 * cfg.page_size,
            0xA66 ^ (it as u64) << 8,
        );
        let (mut preempted, mut resumed_in) = (false, None);
        let mut guard = 0u32;
        while !scheduler.is_idle() {
            guard += 1;
            assert!(guard < 100_000, "resume A/B did not drain (L = {l})");
            let started = Instant::now();
            let report = scheduler.tick().expect("healthy squeeze ticks");
            let elapsed = started.elapsed().as_secs_f64();
            if report.preempted.contains(&victim) {
                preempted = true;
            }
            if report.resumed.contains(&victim) {
                resumed_in = Some(elapsed);
            }
        }
        assert!(preempted, "the squeeze must evict the victim (L = {l})");
        samples.push(resumed_in.expect("the evicted victim must resume"));
    }
    samples
}

/// Run the serving sweep, streaming each record to `on_record`.
pub fn run_serving(
    threads: Option<usize>,
    cfg: &ServingConfig,
    mut on_record: impl FnMut(&Record),
) -> Vec<Record> {
    let mut records = Vec::new();
    let mean_prompt = (cfg.prompt.0 + cfg.prompt.1) / 2;
    for &gap in &cfg.arrival_gaps {
        let trace: Vec<TraceEvent<f32>> =
            generate_trace(&cfg.trace_spec(gap), &[gpa_serve::PlanId::default()]);

        let run = run_continuous(threads, cfg, cfg.kv_pages, &trace);
        assert_eq!(run.rejected, 0, "full budget admits every trace sequence");
        let mut latencies: Vec<u64> = run
            .completions
            .iter()
            .map(Completion::latency_ticks)
            .collect();
        latencies.sort_unstable();
        let stat = crate::protocol::BenchStat::from_samples(&run.samples);
        let total_s: f64 = run.samples.iter().sum();
        let rec = Record {
            experiment: "serving".into(),
            algo: "Continuous".into(),
            l: mean_prompt,
            dk: cfg.dk,
            sf_target: gap as f64,
            sf_achieved: f64::NAN,
            mean_s: stat.mean,
            min_s: stat.min,
            max_s: stat.max,
            std_s: stat.std,
            iters: stat.iters,
            // Tick-latency percentiles are virtual-clock quantities:
            // deterministic per seed, machine-independent, safe in the
            // regression join key. Tokens/sec goes to stdout only.
            note: format!(
                "gap={gap}; window={}; p50t={}; p99t={}",
                cfg.window,
                percentile(&latencies, 50.0),
                percentile(&latencies, 99.0),
            ),
        };
        on_record(&rec);
        records.push(rec);
        let continuous_tps = run.tokens as f64 / total_s;

        let (seq_samples, seq_tokens) = run_sequential(threads, cfg, &trace);
        assert_eq!(seq_tokens, run.tokens, "same workload, same token count");
        let stat = crate::protocol::BenchStat::from_samples(&seq_samples);
        let rec = Record {
            experiment: "serving".into(),
            algo: "Sequential".into(),
            l: mean_prompt,
            dk: cfg.dk,
            sf_target: gap as f64,
            sf_achieved: f64::NAN,
            mean_s: stat.mean,
            min_s: stat.min,
            max_s: stat.max,
            std_s: stat.std,
            iters: stat.iters,
            note: format!("gap={gap}; window={}", cfg.window),
        };
        on_record(&rec);
        records.push(rec);
        let sequential_tps = run.tokens as f64 / seq_samples.iter().sum::<f64>();
        eprintln!(
            "  gap={gap}: continuous {continuous_tps:.0} tok/s vs sequential {sequential_tps:.0} tok/s ({:.2}x)",
            continuous_tps / sequential_tps
        );

        // Page-pressure sweep: the same offered load against each reduced
        // page budget. Admitted/rejected counts and the preemption-event
        // total are virtual-clock deterministic per seed, so they live in
        // the note and survive the regression join.
        for &pages in &cfg.page_budgets {
            let run = run_continuous(threads, cfg, pages, &trace);
            let stat = crate::protocol::BenchStat::from_samples(&run.samples);
            let admitted = trace.len() - run.rejected;
            let rec = Record {
                experiment: "serving".into(),
                algo: "PagePressure".into(),
                l: mean_prompt,
                dk: cfg.dk,
                sf_target: gap as f64,
                sf_achieved: f64::NAN,
                mean_s: stat.mean,
                min_s: stat.min,
                max_s: stat.max,
                std_s: stat.std,
                iters: stat.iters,
                note: format!(
                    "gap={gap}; pages={pages}; adm={admitted}; rej={}; pre={}",
                    run.rejected, run.preemptions,
                ),
            };
            eprintln!(
                "  gap={gap} pages={pages}: {admitted} admitted / {} rejected, {} preemptions \
                 over {} ticks",
                run.rejected,
                run.preemptions,
                run.samples.len(),
            );
            on_record(&rec);
            records.push(rec);
        }
    }

    // Resume-latency A/B: Recompute's resume cost grows with context
    // length (it re-extends every retained K/V row), Swap's stays flat
    // (it splices parked pages back). One victim per point, timed on the
    // tick that resumes it.
    for &l in &cfg.resume_lengths {
        let mut means = Vec::new();
        for (eviction, algo) in [
            (EvictionMode::Recompute, "ResumeRecompute"),
            (EvictionMode::Swap, "ResumeSwap"),
        ] {
            let samples = run_resume_ab(threads, cfg, l, eviction, 5);
            let stat = crate::protocol::BenchStat::from_samples(&samples);
            means.push(stat.mean);
            let rec = Record {
                experiment: "serving".into(),
                algo: algo.into(),
                l,
                dk: cfg.dk,
                sf_target: 0.0,
                sf_achieved: f64::NAN,
                mean_s: stat.mean,
                min_s: stat.min,
                max_s: stat.max,
                std_s: stat.std,
                iters: stat.iters,
                note: format!("resume; window={}; page={}", cfg.window, cfg.page_size),
            };
            on_record(&rec);
            records.push(rec);
        }
        eprintln!(
            "  resume L={l}: recompute {:.1}µs vs swap {:.1}µs ({:.2}x)",
            means[0] * 1e6,
            means[1] * 1e6,
            means[0] / means[1]
        );
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServingConfig {
        ServingConfig {
            arrival_gaps: vec![0, 3],
            page_budgets: vec![2, 4],
            sequences: 5,
            prompt: (2, 6),
            decode: (1, 3),
            dk: 4,
            window: 2,
            max_in_flight: 3,
            kv_pages: 16,
            page_size: 4,
            prefill_chunk: 2,
            resume_lengths: vec![8, 16],
            seed: 11,
        }
    }

    #[test]
    fn sweep_covers_every_algo_and_budget_at_every_load() {
        let cfg = tiny();
        let mut streamed = 0usize;
        let records = run_serving(Some(2), &cfg, |_| streamed += 1);
        assert_eq!(records.len(), streamed);
        assert_eq!(
            records.len(),
            (2 + cfg.page_budgets.len()) * cfg.arrival_gaps.len() + 2 * cfg.resume_lengths.len()
        );
        for gap in &cfg.arrival_gaps {
            for algo in ["Continuous", "Sequential"] {
                assert!(
                    records
                        .iter()
                        .any(|r| r.algo == algo && r.sf_target == *gap as f64),
                    "missing {algo} at gap {gap}"
                );
            }
            for pages in &cfg.page_budgets {
                assert!(
                    records.iter().any(|r| r.algo == "PagePressure"
                        && r.sf_target == *gap as f64
                        && r.note.contains(&format!("pages={pages};"))),
                    "missing PagePressure at gap {gap}, {pages} pages"
                );
            }
        }
        assert!(records.iter().all(|r| r.mean_s > 0.0 && r.iters > 0));
        // Latency percentiles only on the scheduler rows.
        assert!(records
            .iter()
            .filter(|r| r.algo == "Continuous")
            .all(|r| r.note.contains("p50t=") && r.note.contains("p99t=")));
        // Pressure rows carry admitted/rejected and preemption counters.
        assert!(records
            .iter()
            .filter(|r| r.algo == "PagePressure")
            .all(|r| r.note.contains("adm=")
                && r.note.contains("rej=")
                && r.note.contains("pre=")));
        // The resume A/B emits both eviction modes at every length.
        for l in &cfg.resume_lengths {
            for algo in ["ResumeRecompute", "ResumeSwap"] {
                assert!(
                    records.iter().any(|r| r.algo == algo && r.l == *l),
                    "missing {algo} at L {l}"
                );
            }
        }
    }

    #[test]
    fn resume_ab_squeeze_preempts_and_resumes_in_both_modes() {
        // The A/B scenario's internal asserts (victim evicted, victim
        // resumed, trace drains) must hold for both modes at the tiniest
        // geometry — one iteration each.
        let cfg = tiny();
        for eviction in [EvictionMode::Recompute, EvictionMode::Swap] {
            let samples = run_resume_ab(Some(2), &cfg, 8, eviction, 1);
            assert_eq!(samples.len(), 1);
            assert!(samples[0] > 0.0);
        }
    }

    #[test]
    fn tight_budgets_preempt_and_complete_bitwise() {
        // At a saturating burst with a tight-but-feasible budget the
        // scheduler must preempt — and every completion, preempted or not,
        // must still be bitwise the sequential serve.
        let cfg = tiny();
        let trace: Vec<TraceEvent<f32>> =
            generate_trace(&cfg.trace_spec(0), &[gpa_serve::PlanId::default()]);
        let max_pages = trace
            .iter()
            .map(|e| e.request.q.rows().div_ceil(cfg.page_size))
            .max()
            .unwrap();
        let run = run_continuous(Some(2), &cfg, max_pages + 1, &trace);
        assert_eq!(run.rejected, 0, "feasible budget admits everything");
        assert_eq!(run.completions.len(), trace.len());
        assert!(run.preemptions > 0, "tight budget must preempt");
        let engine = AttentionEngine::with_threads(2);
        let plan = AttentionPlan::single(AttentionKernel::Local { n: cfg.window }).unwrap();
        for c in &run.completions {
            let expect = sequential_reference(
                &engine,
                &plan,
                &trace[c.id.as_u64() as usize].request,
                cfg.prefill_chunk,
            )
            .unwrap();
            assert_eq!(c.output, expect);
        }
    }

    #[test]
    fn infeasible_budgets_reject_at_submission() {
        let cfg = tiny();
        let trace: Vec<TraceEvent<f32>> =
            generate_trace(&cfg.trace_spec(0), &[gpa_serve::PlanId::default()]);
        // A one-page pool rejects every sequence longer than one page.
        let run = run_continuous(Some(2), &cfg, 1, &trace);
        let too_long = trace
            .iter()
            .filter(|e| e.request.q.rows() > cfg.page_size)
            .count();
        assert_eq!(run.rejected, too_long);
        assert_eq!(run.completions.len(), trace.len() - too_long);
    }

    #[test]
    fn continuous_serving_is_bitwise_the_sequential_reference() {
        // The measured loop must serve real attention: spot-check every
        // completion against the sequential reference (the exhaustive
        // version of this check lives in tests/serving_sim.rs).
        let cfg = tiny();
        let trace: Vec<TraceEvent<f32>> =
            generate_trace(&cfg.trace_spec(1), &[gpa_serve::PlanId::default()]);
        let run = run_continuous(Some(2), &cfg, cfg.kv_pages, &trace);
        assert_eq!(run.completions.len(), trace.len());
        let engine = AttentionEngine::with_threads(2);
        let plan = AttentionPlan::single(AttentionKernel::Local { n: cfg.window }).unwrap();
        for c in &run.completions {
            let expect = sequential_reference(
                &engine,
                &plan,
                &trace[c.id.as_u64() as usize].request,
                cfg.prefill_chunk,
            )
            .unwrap();
            assert_eq!(c.output, expect);
        }
    }

    #[test]
    fn percentiles_by_nearest_rank() {
        let sorted = [1u64, 2, 3, 4, 10];
        assert_eq!(percentile(&sorted, 50.0), 3);
        assert_eq!(percentile(&sorted, 99.0), 10);
        assert_eq!(percentile(&[7], 50.0), 7);
    }
}
