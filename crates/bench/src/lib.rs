#![warn(missing_docs)]
//! # gpa-bench — the paper's evaluation harness
//!
//! Reproduces every table and figure of the IPDPS 2025 evaluation
//! (Section V) on the CPU substrate, at three scales (`--quick`, default,
//! `--paper`). One binary per experiment:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1_systems` | Table I (device/host inventory) |
//! | `fig3_microbench` | Fig. 3 (kernel × Sf × L × dk sweep) |
//! | `fig4_table2_memlimits` | Fig. 4 + Table II (capacity model) |
//! | `table3_longcontext` | Table III (long-context ladder) |
//! | `fig5_tradeoff` | Fig. 5 (flash vs local trade-off) |
//! | `fig6_popular_masks` | Fig. 6 (Longformer/BigBird masks) |
//! | `ablations` | DESIGN.md §3 ablations A1–A4 |
//!
//! Each prints an ASCII table and writes `results/<experiment>.csv`.
//! The library half (this crate) carries the measurement protocol
//! ([`protocol`]), record/reporting plumbing ([`report`]), the owned
//! algorithm cases ([`kernels`]), and the experiment runners
//! ([`experiments`]) shared by the binaries and the Criterion benches.

pub mod args;
pub mod experiments;
pub mod host;
pub mod kernels;
pub mod protocol;
pub mod report;

pub use args::{Args, Scale};
pub use host::HostInfo;
pub use kernels::{fitted_case, AlgoId, OwnedKernel};
pub use protocol::{measure, measure_auto, speedup, BenchStat, Protocol};
pub use report::{ascii_table, fmt_count, fmt_seconds, write_csv, Record};
