//! Result records, ASCII tables, and CSV output.
//!
//! Every experiment binary emits two artifacts: a human-readable table on
//! stdout (shaped like the paper's tables/figure series) and a CSV file
//! under `results/` for plotting.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// One measured configuration — a row of an experiment's CSV.
#[derive(Clone, Debug)]
pub struct Record {
    /// Experiment id (e.g. "fig3").
    pub experiment: String,
    /// Algorithm label.
    pub algo: String,
    /// Context length.
    pub l: usize,
    /// Embedding dimension.
    pub dk: usize,
    /// Target sparsity factor (NaN when not applicable).
    pub sf_target: f64,
    /// Achieved sparsity factor (NaN when not applicable).
    pub sf_achieved: f64,
    /// Mean runtime in seconds.
    pub mean_s: f64,
    /// Fastest run.
    pub min_s: f64,
    /// Slowest run.
    pub max_s: f64,
    /// Standard deviation.
    pub std_s: f64,
    /// Timed iterations.
    pub iters: usize,
    /// Free-form note ("estimated", "skipped: …", mask name, …).
    pub note: String,
}

impl Record {
    /// CSV header matching [`Record::to_csv_row`].
    pub const CSV_HEADER: &'static str =
        "experiment,algo,L,dk,sf_target,sf_achieved,mean_s,min_s,max_s,std_s,iters,note";

    /// Serialize as one CSV row.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            self.experiment,
            self.algo.replace(',', ";"),
            self.l,
            self.dk,
            fmt_f64(self.sf_target),
            fmt_f64(self.sf_achieved),
            fmt_f64(self.mean_s),
            fmt_f64(self.min_s),
            fmt_f64(self.max_s),
            fmt_f64(self.std_s),
            self.iters,
            self.note.replace(',', ";"),
        )
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "".to_string()
    } else {
        format!("{v:.6e}")
    }
}

/// Write records as CSV under `dir/name.csv`, creating the directory.
pub fn write_csv(dir: &Path, name: &str, records: &[Record]) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut file = std::io::BufWriter::new(fs::File::create(&path)?);
    writeln!(file, "{}", Record::CSV_HEADER)?;
    for r in records {
        writeln!(file, "{}", r.to_csv_row())?;
    }
    file.flush()?;
    Ok(path)
}

/// Render an ASCII table with a header row and alignment.
pub fn ascii_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            let _ = write!(out, "+{}", "-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (c, h) in headers.iter().enumerate() {
        let _ = write!(out, "| {h:width$} ", width = widths[c]);
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (c, &width) in widths.iter().enumerate().take(cols) {
            let empty = String::new();
            let cell = row.get(c).unwrap_or(&empty);
            let _ = write!(out, "| {cell:width$} ");
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// Human-friendly seconds: "1.234 s", "12.3 ms", "456 µs".
pub fn fmt_seconds(s: f64) -> String {
    if s.is_nan() {
        return "—".to_string();
    }
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Human-friendly large integer with thousands separators.
pub fn fmt_count(v: u64) -> String {
    let digits = v.to_string();
    let mut out = String::new();
    for (i, ch) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> Record {
        Record {
            experiment: "fig3".into(),
            algo: "CSR".into(),
            l: 1024,
            dk: 64,
            sf_target: 0.01,
            sf_achieved: 0.0101,
            mean_s: 0.5,
            min_s: 0.4,
            max_s: 0.6,
            std_s: 0.05,
            iters: 5,
            note: String::new(),
        }
    }

    #[test]
    fn csv_roundtrip_field_count() {
        let row = rec().to_csv_row();
        assert_eq!(
            row.split(',').count(),
            Record::CSV_HEADER.split(',').count()
        );
    }

    #[test]
    fn csv_nan_becomes_empty() {
        let mut r = rec();
        r.sf_target = f64::NAN;
        let row = r.to_csv_row();
        let fields: Vec<&str> = row.split(',').collect();
        assert_eq!(fields[4], "");
    }

    #[test]
    fn csv_commas_in_text_are_escaped() {
        let mut r = rec();
        r.note = "skipped, too big".into();
        assert_eq!(r.to_csv_row().split(',').count(), 12);
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("gpa_bench_test_csv");
        let path = write_csv(&dir, "unit", &[rec(), rec()]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 3);
        assert!(content.starts_with("experiment,"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn table_renders_aligned() {
        let t = ascii_table(
            &["algo", "time"],
            &[
                vec!["CSR".into(), "1.0 ms".into()],
                vec!["FlashAttention".into(), "2.0 ms".into()],
            ],
        );
        assert!(t.contains("| CSR "));
        assert!(t.contains("| FlashAttention "));
        let first_line_len = t.lines().next().unwrap().len();
        assert!(t.lines().all(|l| l.len() == first_line_len));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_seconds(1.5), "1.500 s");
        assert_eq!(fmt_seconds(0.0123), "12.300 ms");
        assert_eq!(fmt_seconds(1e-5), "10.0 µs");
        assert_eq!(fmt_seconds(f64::NAN), "—");
        assert_eq!(fmt_count(1_234_567), "1,234,567");
        assert_eq!(fmt_count(12), "12");
    }
}
