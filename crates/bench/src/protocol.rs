//! The paper's measurement protocol.
//!
//! "Each combination of input parameters were run 10 times for a warm up
//! and then an additional 15 iterations were timed for the benchmark"
//! (Section V-C), reporting the average. [`Protocol::paper`] is exactly
//! that; [`Protocol::cpu_default`] trims iterations for CPU-scale runs, and
//! [`Protocol::adaptive`] further reduces them for very large cases (the
//! paper itself did this for the 160 M-token FlashAttention run, which got
//! "no warm up and only one benchmark run").

use std::time::Instant;

/// Warm-up/measure iteration counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Protocol {
    /// Untimed warm-up runs.
    pub warmup: usize,
    /// Timed runs.
    pub iters: usize,
}

impl Protocol {
    /// The paper's protocol: 10 warm-up + 15 timed runs.
    pub fn paper() -> Self {
        Protocol {
            warmup: 10,
            iters: 15,
        }
    }

    /// CPU-scale default: 2 warm-up + 5 timed runs.
    pub fn cpu_default() -> Self {
        Protocol {
            warmup: 2,
            iters: 5,
        }
    }

    /// Scale iterations down for expensive cases. `est_seconds` is a rough
    /// single-run estimate; the budget caps total measurement time.
    pub fn adaptive(self, est_seconds: f64, budget_seconds: f64) -> Self {
        if est_seconds <= 0.0 {
            return self;
        }
        let affordable = (budget_seconds / est_seconds).floor() as usize;
        if affordable >= self.warmup + self.iters {
            return self;
        }
        // Keep at least one warm-up (when any repetition is affordable) and
        // one timed run.
        let iters = affordable.saturating_sub(1).clamp(1, self.iters);
        let warmup = if affordable > 1 { 1 } else { 0 };
        Protocol { warmup, iters }
    }
}

/// Summary statistics over the timed iterations (seconds).
#[derive(Clone, Copy, Debug)]
pub struct BenchStat {
    /// Mean runtime — the statistic the paper plots.
    pub mean: f64,
    /// Fastest run.
    pub min: f64,
    /// Slowest run.
    pub max: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Number of timed runs.
    pub iters: usize,
}

impl BenchStat {
    /// Aggregate raw per-iteration timings.
    pub fn from_samples(samples: &[f64]) -> BenchStat {
        assert!(!samples.is_empty(), "no samples to aggregate");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
        BenchStat {
            mean,
            min: samples.iter().cloned().fold(f64::INFINITY, f64::min),
            max: samples.iter().cloned().fold(0.0, f64::max),
            std: var.sqrt(),
            iters: samples.len(),
        }
    }
}

/// Run `f` under the protocol and aggregate timings.
pub fn measure<F: FnMut()>(protocol: Protocol, mut f: F) -> BenchStat {
    for _ in 0..protocol.warmup {
        f();
    }
    let mut samples = Vec::with_capacity(protocol.iters.max(1));
    for _ in 0..protocol.iters.max(1) {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64());
    }
    BenchStat::from_samples(&samples)
}

/// Run `f` once to estimate its cost, then complete as much of
/// `max_protocol` as fits in `budget_seconds`. The pilot run serves as the
/// first warm-up (or as the only sample when even one repeat is
/// unaffordable) — mirroring the paper's own concession for its 160 M-token
/// FlashAttention case.
pub fn measure_auto<F: FnMut()>(
    max_protocol: Protocol,
    budget_seconds: f64,
    mut f: F,
) -> BenchStat {
    let t0 = Instant::now();
    f();
    let pilot = t0.elapsed().as_secs_f64();
    let p = max_protocol.adaptive(pilot, budget_seconds);
    if p.warmup == 0 && p.iters == 1 {
        return BenchStat::from_samples(&[pilot]);
    }
    // The pilot already served as one warm-up.
    measure(
        Protocol {
            warmup: p.warmup.saturating_sub(1),
            iters: p.iters,
        },
        f,
    )
}

/// Speedup of `baseline` over `candidate` (`>1` means the candidate is
/// faster) — the ratio the paper reports throughout Section V.
pub fn speedup(baseline_mean: f64, candidate_mean: f64) -> f64 {
    if candidate_mean <= 0.0 {
        return f64::INFINITY;
    }
    baseline_mean / candidate_mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_protocol_counts() {
        assert_eq!(
            Protocol::paper(),
            Protocol {
                warmup: 10,
                iters: 15
            }
        );
    }

    #[test]
    fn measure_runs_expected_times() {
        let mut calls = 0usize;
        let p = Protocol {
            warmup: 3,
            iters: 4,
        };
        let stat = measure(p, || calls += 1);
        assert_eq!(calls, 7);
        assert_eq!(stat.iters, 4);
        assert!(stat.mean >= 0.0 && stat.min <= stat.mean && stat.mean <= stat.max);
    }

    #[test]
    fn adaptive_trims_expensive_cases() {
        let p = Protocol::paper();
        // Cheap case: unchanged.
        assert_eq!(p.adaptive(0.001, 10.0), p);
        // Expensive: 10s budget at 3s/run → 3 affordable runs.
        let trimmed = p.adaptive(3.0, 10.0);
        assert_eq!(trimmed.warmup, 1);
        assert_eq!(trimmed.iters, 2);
        // Catastrophic: still runs once.
        let minimal = p.adaptive(100.0, 10.0);
        assert_eq!(minimal.warmup, 0);
        assert_eq!(minimal.iters, 1);
    }

    #[test]
    fn stats_from_known_samples() {
        let s = BenchStat::from_samples(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn speedup_ratio() {
        assert!((speedup(10.0, 2.0) - 5.0).abs() < 1e-12);
        assert!((speedup(1.0, 4.0) - 0.25).abs() < 1e-12);
        assert!(speedup(1.0, 0.0).is_infinite());
    }
}
