//! Self-contained algorithm cases: an owned mask plus the kernel selection,
//! buildable from `(L, dk, Sf)` alone — the unit every experiment sweeps.

use gpa_core::{AttentionEngine, AttentionKernel, AttentionPlan, CooSearch};
use gpa_masks::{
    dilated1d_width_for_sparsity, dilated2d_block_for_sparsity, global_count_for_sparsity,
    local_window_for_sparsity, Dilated1d, Dilated2d, GlobalMinusLocal, GlobalSet, LocalWindow,
    MaskPattern,
};
use gpa_sparse::{CooMask, CsrMask, DenseMask};
use gpa_tensor::Matrix;

/// An algorithm under benchmark, owning whatever mask data it needs.
pub enum OwnedKernel {
    /// Dense masked SDP baseline.
    Sdp(DenseMask),
    /// COO explicit kernel (paper's linear row search).
    Coo(CooMask, CooSearch),
    /// CSR explicit kernel.
    Csr(CsrMask),
    /// Implicit local window.
    Local(usize),
    /// Implicit 1-D dilated window.
    Dilated1d {
        /// Window width.
        w: usize,
        /// Dilation factor.
        r: usize,
    },
    /// Implicit 2-D dilated blocks.
    Dilated2d {
        /// Block edge.
        bs: usize,
        /// Dilation factor.
        r: usize,
    },
    /// Implicit global-minus-local.
    Global(GlobalSet, usize),
    /// Dense FlashAttention baseline.
    Flash,
}

impl OwnedKernel {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        self.as_kernel().name()
    }

    /// Borrowed dispatch view.
    pub fn as_kernel(&self) -> AttentionKernel<'_> {
        match self {
            OwnedKernel::Sdp(mask) => AttentionKernel::SdpMasked(mask),
            OwnedKernel::Coo(mask, search) => AttentionKernel::Coo(mask, *search),
            OwnedKernel::Csr(mask) => AttentionKernel::Csr(mask),
            OwnedKernel::Local(n) => AttentionKernel::Local { n: *n },
            OwnedKernel::Dilated1d { w, r } => AttentionKernel::Dilated1d { w: *w, r: *r },
            OwnedKernel::Dilated2d { bs, r } => AttentionKernel::Dilated2d {
                block_size: *bs,
                r: *r,
            },
            OwnedKernel::Global(globals, n_sub) => AttentionKernel::Global {
                globals,
                n_sub: *n_sub,
            },
            OwnedKernel::Flash => AttentionKernel::Flash,
        }
    }

    /// The achieved sparsity factor of the case's mask (1.0 for dense
    /// baselines).
    pub fn achieved_sf(&self, l: usize) -> f64 {
        let te = l as f64 * l as f64;
        match self {
            OwnedKernel::Sdp(mask) => mask.nnz() as f64 / te,
            OwnedKernel::Coo(mask, _) => mask.nnz() as f64 / te,
            OwnedKernel::Csr(mask) => mask.nnz() as f64 / te,
            OwnedKernel::Local(n) => LocalWindow::new(l, *n).sparsity_factor(),
            OwnedKernel::Dilated1d { w, r } => Dilated1d::new(l, *w, *r).sparsity_factor(),
            OwnedKernel::Dilated2d { bs, r } => Dilated2d::new(l, *bs, *r).sparsity_factor(),
            OwnedKernel::Global(globals, n_sub) => {
                GlobalMinusLocal::new(globals.clone(), *n_sub).sparsity_factor()
            }
            OwnedKernel::Flash => 1.0,
        }
    }

    /// Compile this case into a single-step engine plan. Experiments
    /// compile once per case and reuse the plan across the measurement
    /// protocol's warm-up and timed iterations.
    pub fn plan(&self) -> AttentionPlan<'_> {
        AttentionPlan::single(self.as_kernel()).expect("benchmark case must compile")
    }

    /// Run the case in f32 (the benchmark precision) through an engine.
    pub fn run_f32(
        &self,
        engine: &AttentionEngine,
        q: &Matrix<f32>,
        k: &Matrix<f32>,
        v: &Matrix<f32>,
    ) -> Matrix<f32> {
        engine
            .run(&self.plan(), q, k, v)
            .expect("benchmark case must be well-formed")
    }

    /// Approximate multiply-add count of one run — used to budget adaptive
    /// iteration counts.
    pub fn flop_estimate(&self, l: usize, dk: usize) -> f64 {
        let dense = 2.0 * (l as f64) * (l as f64) * dk as f64;
        match self {
            OwnedKernel::Sdp(_) | OwnedKernel::Flash => 2.0 * dense,
            _ => 2.0 * self.achieved_sf(l) * dense,
        }
    }
}

/// Build the fitted "ordered sparsity" case for an algorithm id at a target
/// sparsity, following the paper's Fig. 3 setup (dilation 1 for both
/// dilated kernels; window/block fitted to `Sf`; globals fitted with the
/// identity diagonal subtracted).
pub fn fitted_case(algo: AlgoId, l: usize, sf: f64) -> OwnedKernel {
    match algo {
        AlgoId::Sdp => {
            OwnedKernel::Sdp(LocalWindow::new(l, local_window_for_sparsity(l, sf)).to_dense())
        }
        AlgoId::Coo => OwnedKernel::Coo(
            LocalWindow::new(l, local_window_for_sparsity(l, sf)).to_coo(),
            CooSearch::Linear,
        ),
        AlgoId::CooBinary => OwnedKernel::Coo(
            LocalWindow::new(l, local_window_for_sparsity(l, sf)).to_coo(),
            CooSearch::Binary,
        ),
        AlgoId::Csr => {
            OwnedKernel::Csr(LocalWindow::new(l, local_window_for_sparsity(l, sf)).to_csr())
        }
        AlgoId::Local => OwnedKernel::Local(local_window_for_sparsity(l, sf)),
        AlgoId::Dilated1d => OwnedKernel::Dilated1d {
            w: dilated1d_width_for_sparsity(l, 1, sf),
            r: 1,
        },
        AlgoId::Dilated2d => OwnedKernel::Dilated2d {
            bs: dilated2d_block_for_sparsity(l, 1, sf),
            r: 1,
        },
        AlgoId::Global => OwnedKernel::Global(
            GlobalSet::evenly_spaced(l, global_count_for_sparsity(l, sf)),
            0,
        ),
        AlgoId::Flash => OwnedKernel::Flash,
    }
}

/// Stable identifiers for the algorithms the experiments sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgoId {
    /// Masked SDP baseline.
    Sdp,
    /// COO with the paper's linear search.
    Coo,
    /// COO with binary search (ablation A1).
    CooBinary,
    /// CSR.
    Csr,
    /// Implicit local window.
    Local,
    /// Implicit 1-D dilation.
    Dilated1d,
    /// Implicit 2-D dilation.
    Dilated2d,
    /// Implicit global.
    Global,
    /// Dense FlashAttention.
    Flash,
}

impl AlgoId {
    /// The Fig. 3 sweep set (paper order, dense baseline first).
    pub const FIG3: [AlgoId; 7] = [
        AlgoId::Sdp,
        AlgoId::Coo,
        AlgoId::Csr,
        AlgoId::Global,
        AlgoId::Local,
        AlgoId::Dilated1d,
        AlgoId::Dilated2d,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_tensor::init::qkv;

    #[test]
    fn fitted_cases_land_near_target_sf() {
        let l = 1024;
        for algo in AlgoId::FIG3 {
            if algo == AlgoId::Sdp {
                continue; // dense work; mask only selects entries
            }
            let case = fitted_case(algo, l, 0.05);
            let sf = case.achieved_sf(l);
            assert!((sf - 0.05).abs() / 0.05 < 0.35, "{:?}: achieved {sf}", algo);
        }
    }

    #[test]
    fn all_cases_run_and_agree_across_formats() {
        let l = 64;
        let (q, k, v) = qkv::<f32>(l, 8, 3);
        let engine = AttentionEngine::with_threads(2);
        // COO/CSR/Local share the same fitted mask → identical outputs.
        let coo = fitted_case(AlgoId::Coo, l, 0.1).run_f32(&engine, &q, &k, &v);
        let csr = fitted_case(AlgoId::Csr, l, 0.1).run_f32(&engine, &q, &k, &v);
        let local = fitted_case(AlgoId::Local, l, 0.1).run_f32(&engine, &q, &k, &v);
        assert!(coo.max_abs_diff(&csr) < 1e-5);
        assert!(local.max_abs_diff(&csr) < 1e-5);
        // Dense cases produce the right shape.
        let flash = fitted_case(AlgoId::Flash, l, 1.0).run_f32(&engine, &q, &k, &v);
        assert_eq!(flash.shape(), (l, 8));
    }

    #[test]
    fn plans_compile_for_every_fig3_case() {
        for algo in AlgoId::FIG3 {
            let case = fitted_case(algo, 128, 0.1);
            let plan = case.plan();
            assert_eq!(plan.len(), 1, "{:?}", algo);
        }
    }

    #[test]
    fn flop_estimates_track_sparsity() {
        let l = 256;
        let dense = fitted_case(AlgoId::Flash, l, 1.0).flop_estimate(l, 64);
        let sparse = fitted_case(AlgoId::Local, l, 0.01).flop_estimate(l, 64);
        assert!(dense > sparse * 20.0);
    }

    #[test]
    fn names_are_paper_legends() {
        assert_eq!(fitted_case(AlgoId::Csr, 16, 0.5).name(), "CSR");
        assert_eq!(
            fitted_case(AlgoId::Sdp, 16, 0.5).name(),
            "PyTorch SDP (Masked)"
        );
        assert_eq!(fitted_case(AlgoId::Flash, 16, 0.5).name(), "FlashAttention");
    }
}
