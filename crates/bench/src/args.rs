//! Minimal CLI argument parsing shared by the experiment binaries.
//!
//! Flags understood by every binary:
//!
//! - `--paper`      run the paper's sizes and 10+15 protocol (slow on CPU);
//! - `--quick`      tiny smoke-test sizes (seconds);
//! - `--threads N`  worker count (default: `GPA_THREADS` or all cores);
//! - `--out DIR`    CSV output directory (default `results/`);
//! - `--seed S`     workload seed.

use std::path::PathBuf;

/// Size/protocol scaling selected on the command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test sizes.
    Quick,
    /// CPU-feasible defaults (minutes).
    Default,
    /// The paper's exact sizes and protocol (hours on CPU).
    Paper,
}

/// Parsed command line.
#[derive(Clone, Debug)]
pub struct Args {
    /// Selected scale.
    pub scale: Scale,
    /// Worker threads (None = library default).
    pub threads: Option<usize>,
    /// CSV output directory.
    pub out_dir: PathBuf,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: Scale::Default,
            threads: None,
            out_dir: PathBuf::from("results"),
            seed: 0x5EED,
        }
    }
}

impl Args {
    /// Parse from an iterator of arguments (excluding `argv[0]`).
    /// Unknown flags produce an error message listing valid options.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--paper" => out.scale = Scale::Paper,
                "--quick" => out.scale = Scale::Quick,
                "--threads" => {
                    let v = it.next().ok_or("--threads requires a value")?;
                    out.threads = Some(v.parse().map_err(|_| format!("bad thread count: {v}"))?);
                }
                "--out" => {
                    let v = it.next().ok_or("--out requires a directory")?;
                    out.out_dir = PathBuf::from(v);
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed requires a value")?;
                    out.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
                }
                "--help" | "-h" => {
                    return Err(
                        "flags: --paper | --quick | --threads N | --out DIR | --seed S".into(),
                    )
                }
                other => return Err(format!("unknown flag {other}; try --help")),
            }
        }
        Ok(out)
    }

    /// Parse the process's real command line, exiting with a message on
    /// error.
    pub fn from_env() -> Args {
        match Args::parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Build the worker pool this run should use.
    pub fn make_pool(&self) -> gpa_parallel::ThreadPool {
        let threads = self.threads.unwrap_or_else(gpa_parallel::default_threads);
        gpa_parallel::ThreadPool::new(threads)
    }

    /// Build the [`gpa_core::AttentionEngine`] this run should use — the
    /// front door every experiment binary now dispatches through.
    pub fn make_engine(&self) -> gpa_core::AttentionEngine {
        let threads = self.threads.unwrap_or_else(gpa_parallel::default_threads);
        gpa_core::AttentionEngine::with_threads(threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        Args::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, Scale::Default);
        assert_eq!(a.out_dir, PathBuf::from("results"));
        assert!(a.threads.is_none());
    }

    #[test]
    fn all_flags() {
        let a = parse(&[
            "--paper",
            "--threads",
            "8",
            "--out",
            "/tmp/x",
            "--seed",
            "42",
        ])
        .unwrap();
        assert_eq!(a.scale, Scale::Paper);
        assert_eq!(a.threads, Some(8));
        assert_eq!(a.out_dir, PathBuf::from("/tmp/x"));
        assert_eq!(a.seed, 42);
    }

    #[test]
    fn quick_flag() {
        assert_eq!(parse(&["--quick"]).unwrap().scale, Scale::Quick);
    }

    #[test]
    fn errors() {
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--threads", "x"]).is_err());
        assert!(parse(&["--wat"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
