#![warn(missing_docs)]
//! # gpa-model — decoder-stack serving over heterogeneous attention plans
//!
//! The paper's sparse graph kernels pay off when they sit inside a real
//! N-layer decoder: production hybrid stacks interleave **F**ull and
//! **S**parse attention layers (`"FFFSSSSSSSSFFF"`), and the sparsity /
//! quality trade-off is a model-level property, not a per-kernel one.
//! This crate is that model layer:
//!
//! - [`LayerPattern`] — a layer-pattern string, one ASCII-alphanumeric
//!   label per layer, parsed once;
//! - [`DecoderModel`] — N stacked [`MultiHeadAttention`]
//!   (`gpa_core::MultiHeadAttention`) layers with residual connections,
//!   each label bound to its own compiled
//!   [`AttentionPlan`](gpa_core::AttentionPlan), so one stack mixes
//!   dense-equivalent, BigBird-style, Longformer-style, and dilated
//!   kernels;
//! - [`ModelKvState`] — one [`PagePool`](gpa_core::PagePool) entry per
//!   layer, so admission and preemption budgets count **every** layer's
//!   pages, and eviction/resume retain and re-adopt all of them.
//!
//! Serving goes through [`DecoderModel::advance_batched`]: per layer,
//! all sequences × heads flatten into one engine launch; a 1-row window
//! is a decode step, so chunked prefill and batched decode share one
//! transactional path (failures truncate every layer back).
//!
//! ```
//! use gpa_core::{AttentionEngine, AttentionKernel, PagePool};
//! use gpa_model::{DecoderModel, LayerPattern, ModelKvState};
//! use gpa_tensor::init::gaussian_matrix;
//!
//! let engine = AttentionEngine::with_threads(2);
//! // Four layers: Full bookends around a sparse dilated middle.
//! let model: DecoderModel<'_, f64> = DecoderModel::new(
//!     LayerPattern::parse("FSSF")?,
//!     vec![
//!         ('F', engine.compile(&[AttentionKernel::Local { n: 64 }])?),
//!         ('S', engine.compile(&[AttentionKernel::Dilated1d { w: 2, r: 2 }])?),
//!     ],
//!     16, // d_model
//!     2,  // heads
//!     8,  // dk
//!     42, // weight seed
//! )?;
//!
//! // 32 pages of 4 tokens; each cached token occupies a row in all 4
//! // layers, so a 6-token prompt costs 4 × ceil(6/4) = 8 pages.
//! let mut pool: PagePool<f64> = PagePool::new(32, 4);
//! let state = ModelKvState::allocate(&model, &mut pool);
//! let prompt = gaussian_matrix(6, 16, 1.0, 7);
//! let out = model.forward_prefill_chunked(&engine, &mut pool, &state, &prompt, 4)?;
//! assert_eq!(out.shape(), (6, 16));
//! assert_eq!(state.pages_held(&pool), 8);
//!
//! // Decode one token: same path, a 1-row window.
//! let tok = gaussian_matrix(1, 16, 1.0, 8);
//! let next = model.forward_decode(&engine, &mut pool, &state, &tok)?;
//! assert_eq!(next.shape(), (1, 16));
//! assert_eq!(state.tokens(&pool), 7);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`MultiHeadAttention`]: gpa_core::MultiHeadAttention

pub mod decoder;
pub mod error;
pub mod pattern;

pub use decoder::{DecoderModel, ModelAdvance, ModelKvState, ModelWorkItem};
pub use error::ModelError;
pub use pattern::LayerPattern;
