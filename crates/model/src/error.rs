//! Model-level error type.

use gpa_core::AttnError;
use std::error::Error;
use std::fmt;

/// Everything that can go wrong building or driving a
/// [`DecoderModel`](crate::DecoderModel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A [`LayerPattern`](crate::LayerPattern) string failed to parse.
    BadPattern {
        /// What was wrong with the pattern string.
        what: &'static str,
    },
    /// The pattern uses a label no binding provides a plan for.
    Unbound {
        /// The unbound layer label.
        label: char,
    },
    /// Two bindings claim the same label.
    DuplicateBinding {
        /// The label bound twice.
        label: char,
    },
    /// A binding's label never appears in the pattern.
    UnusedBinding {
        /// The label with no layer.
        label: char,
    },
    /// A bound plan is a dense baseline — those have no resumable state
    /// and therefore no KV-cached serving form.
    DensePlan {
        /// The label bound to the dense plan.
        label: char,
    },
    /// The model's own shape parameters are invalid.
    BadModel {
        /// Which parameter, and why.
        what: &'static str,
    },
    /// An input or a [`ModelKvState`](crate::ModelKvState) does not match
    /// the model it is being driven through.
    BadState {
        /// Which expectation failed.
        what: &'static str,
    },
    /// The page pool could not supply the pages this advance needs; no
    /// cache was mutated.
    OutOfPages,
    /// A kernel launch failed inside a layer; every layer's cache was
    /// rolled back.
    Attn(AttnError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BadPattern { what } => write!(f, "bad layer pattern: {what}"),
            ModelError::Unbound { label } => {
                write!(f, "pattern label '{label}' has no plan binding")
            }
            ModelError::DuplicateBinding { label } => {
                write!(f, "label '{label}' is bound more than once")
            }
            ModelError::UnusedBinding { label } => {
                write!(f, "binding '{label}' never appears in the pattern")
            }
            ModelError::DensePlan { label } => write!(
                f,
                "label '{label}' binds a dense baseline plan, which has no KV-cached serving form"
            ),
            ModelError::BadModel { what } => write!(f, "bad model parameter: {what}"),
            ModelError::BadState { what } => write!(f, "bad model input/state: {what}"),
            ModelError::OutOfPages => {
                write!(f, "page pool cannot supply the pages this advance needs")
            }
            ModelError::Attn(e) => write!(f, "layer launch failed: {e}"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Attn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AttnError> for ModelError {
    fn from(e: AttnError) -> Self {
        ModelError::Attn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        assert!(ModelError::BadPattern { what: "empty" }
            .to_string()
            .contains("empty"));
        assert!(ModelError::Unbound { label: 'S' }.to_string().contains('S'));
        assert!(ModelError::DuplicateBinding { label: 'F' }
            .to_string()
            .contains("more than once"));
        assert!(ModelError::UnusedBinding { label: 'X' }
            .to_string()
            .contains("never appears"));
        assert!(ModelError::DensePlan { label: 'D' }
            .to_string()
            .contains("dense"));
        assert!(ModelError::OutOfPages.to_string().contains("pages"));
        let wrapped: ModelError = AttnError::BadParameter { what: "boom" }.into();
        assert!(wrapped.to_string().contains("boom"));
        assert!(Error::source(&wrapped).is_some());
        assert!(Error::source(&ModelError::OutOfPages).is_none());
    }
}
