//! The decoder stack: N multi-head attention layers, each bound to its
//! own compiled [`AttentionPlan`], driven through per-layer paged KV.
//!
//! A [`DecoderModel`] is compiled once from a [`LayerPattern`] plus a
//! label→plan binding list; after that, serving is three verbs:
//!
//! - [`ModelKvState::allocate`] — one pool entry **per layer**, so page
//!   budgets count every layer of every sequence;
//! - [`DecoderModel::advance_batched`] — push one input window per
//!   sequence through the whole stack, all sequences × heads of each
//!   layer flattened into **one** engine launch per layer (a 1-row
//!   window *is* a decode step — the geometry is identical);
//! - [`ModelKvState::release`] / [`ModelKvState::adopt`] — eviction
//!   retains every layer's cache, resume re-adopts them page-atomically.
//!
//! Advances are transactional: a failed page grab or kernel launch
//! truncates every layer of every sequence back to its prior length and
//! reports an error, leaving pool accounting untouched.

use crate::error::ModelError;
use crate::pattern::LayerPattern;
use gpa_core::batch::AttentionRequest;
use gpa_core::pages::{PagePool, SeqId, SwapArena, SwapTicket};
use gpa_core::{AttentionEngine, AttentionPlan, KvCache, MultiHeadAttention, ProjectedHeads};
use gpa_tensor::{Matrix, Real};

/// Elementwise residual add — the one non-attention op in the stack.
fn residual<T: Real>(x: &Matrix<T>, attn: &Matrix<T>) -> Matrix<T> {
    debug_assert_eq!(x.shape(), attn.shape());
    Matrix::from_fn(x.rows(), x.cols(), |i, j| x.get(i, j) + attn.get(i, j))
}

/// A stack of [`MultiHeadAttention`] layers with heterogeneous attention
/// plans, compiled once from a [`LayerPattern`].
///
/// Layer `s` runs the plan bound to `pattern.labels()[s]`; its output is
/// added back to its input (a residual connection), and the sum feeds
/// layer `s + 1`. Layer weights are Xavier-initialized deterministically
/// from the model seed, so two models built with the same arguments are
/// identical.
pub struct DecoderModel<'p, T> {
    pattern: LayerPattern,
    /// Distinct plans, one per binding, indexed by [`Self::layer_plan`].
    plans: Vec<AttentionPlan<'p>>,
    plan_labels: Vec<char>,
    /// For each layer, the index into [`Self::plans`] it runs.
    layer_plan: Vec<usize>,
    layers: Vec<MultiHeadAttention<T>>,
    d_model: usize,
    heads: usize,
    dk: usize,
}

impl<'p, T: Real> DecoderModel<'p, T> {
    /// Compile a model: one layer per pattern label, each label bound to
    /// exactly one composable plan. The binding list must cover the
    /// pattern's distinct labels exactly — no unbound labels, no
    /// duplicates, no unused bindings.
    pub fn new(
        pattern: LayerPattern,
        bindings: Vec<(char, AttentionPlan<'p>)>,
        d_model: usize,
        heads: usize,
        dk: usize,
        seed: u64,
    ) -> Result<Self, ModelError> {
        if d_model == 0 {
            return Err(ModelError::BadModel {
                what: "d_model must be positive",
            });
        }
        if heads == 0 {
            return Err(ModelError::BadModel {
                what: "heads must be positive",
            });
        }
        if dk == 0 {
            return Err(ModelError::BadModel {
                what: "dk must be positive",
            });
        }
        let mut plans = Vec::with_capacity(bindings.len());
        let mut plan_labels: Vec<char> = Vec::with_capacity(bindings.len());
        for (label, plan) in bindings {
            if plan_labels.contains(&label) {
                return Err(ModelError::DuplicateBinding { label });
            }
            if !plan.is_composable() {
                return Err(ModelError::DensePlan { label });
            }
            plan_labels.push(label);
            plans.push(plan);
        }
        let mut layer_plan = Vec::with_capacity(pattern.len());
        for &label in pattern.labels() {
            match plan_labels.iter().position(|&l| l == label) {
                Some(p) => layer_plan.push(p),
                None => return Err(ModelError::Unbound { label }),
            }
        }
        if let Some(&label) = plan_labels
            .iter()
            .find(|&&l| !pattern.labels().contains(&l))
        {
            return Err(ModelError::UnusedBinding { label });
        }
        let layers = (0..pattern.len())
            .map(|s| {
                // One deterministic seed per layer position: same model
                // arguments always rebuild bit-identical weights.
                let layer_seed = seed ^ ((s as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                MultiHeadAttention::new_random(d_model, heads, dk, layer_seed)
            })
            .collect();
        Ok(DecoderModel {
            pattern,
            plans,
            plan_labels,
            layer_plan,
            layers,
            d_model,
            heads,
            dk,
        })
    }

    /// The layer pattern this model was compiled from.
    pub fn pattern(&self) -> &LayerPattern {
        &self.pattern
    }

    /// Number of layers in the stack.
    pub fn layers(&self) -> usize {
        self.layers.len()
    }

    /// Layer `s`'s attention sub-layer.
    pub fn layer(&self, s: usize) -> &MultiHeadAttention<T> {
        &self.layers[s]
    }

    /// The plan layer `s` runs.
    pub fn plan_of(&self, s: usize) -> &AttentionPlan<'p> {
        &self.plans[self.layer_plan[s]]
    }

    /// The pattern label of layer `s`.
    pub fn label_of(&self, s: usize) -> char {
        self.pattern.labels()[s]
    }

    /// Number of distinct plans in the stack.
    pub fn distinct_plans(&self) -> usize {
        self.plans.len()
    }

    /// Model (stream) dimension.
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Heads per layer.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Head dimension.
    pub fn dk(&self) -> usize {
        self.dk
    }

    /// The full square forward pass — the sequential reference the
    /// serving paths are proven against. No cache is involved: every
    /// layer sees all `L` rows at once.
    pub fn forward(
        &self,
        engine: &AttentionEngine,
        x: &Matrix<T>,
    ) -> Result<Matrix<T>, ModelError> {
        if x.cols() != self.d_model {
            return Err(ModelError::BadState {
                what: "input width must be d_model",
            });
        }
        let mut h = x.clone();
        for (s, layer) in self.layers.iter().enumerate() {
            let attn = layer.forward_on(engine, &self.plans[self.layer_plan[s]], &h)?;
            h = residual(&h, &attn);
        }
        Ok(h)
    }

    fn check_items(
        &self,
        pool: &PagePool<T>,
        items: &[ModelWorkItem<'_, T>],
    ) -> Result<(), ModelError> {
        for item in items {
            if item.x.cols() != self.d_model {
                return Err(ModelError::BadState {
                    what: "item input width must be d_model",
                });
            }
            if item.x.rows() == 0 {
                return Err(ModelError::BadState {
                    what: "item input must have at least one row",
                });
            }
            let seqs = item.state.layer_seqs();
            if seqs.len() != self.layers.len() {
                return Err(ModelError::BadState {
                    what: "state layer count does not match the model",
                });
            }
            let tokens = pool.cache(seqs[0]).len();
            for &seq in seqs {
                let cache = pool.cache(seq);
                if cache.heads() != self.heads || cache.dk() != self.dk || cache.dv() != self.dk {
                    return Err(ModelError::BadState {
                        what: "state cache shape does not match the model (use ModelKvState::allocate)",
                    });
                }
                if cache.len() != tokens {
                    return Err(ModelError::BadState {
                        what: "layers disagree on cached length",
                    });
                }
            }
        }
        for (i, item) in items.iter().enumerate() {
            if items[..i]
                .iter()
                .any(|prev| prev.state.layer_seqs()[0] == item.state.layer_seqs()[0])
            {
                return Err(ModelError::BadState {
                    what: "two items share a ModelKvState",
                });
            }
        }
        Ok(())
    }

    /// Advance every item by its input window through the whole stack:
    /// per layer, project all items, append all layers' K/V through the
    /// pool, and run all sequences × heads as **one** engine launch,
    /// feeding each residual sum to the next layer. Returns one
    /// `rows × d_model` output per item.
    ///
    /// A 1-row window is exactly a decode step (the query window sits at
    /// the cache tail either way), so prefill chunks and decode tokens
    /// share this path — and a mixed batch is one launch per layer.
    ///
    /// Transactional: on [`ModelError::OutOfPages`] or a failed launch,
    /// every layer of every item is truncated back to its prior length.
    pub fn advance_batched(
        &self,
        engine: &AttentionEngine,
        pool: &mut PagePool<T>,
        items: &[ModelWorkItem<'_, T>],
    ) -> Result<ModelAdvance<T>, ModelError> {
        self.check_items(pool, items)?;
        let priors: Vec<usize> = items
            .iter()
            .map(|item| pool.cache(item.state.layer_seqs()[0]).len())
            .collect();
        let rollback = |pool: &mut PagePool<T>| {
            for (item, &prior) in items.iter().zip(&priors) {
                for &seq in item.state.layer_seqs() {
                    pool.truncate(seq, prior);
                }
            }
        };
        let mut xs: Vec<Matrix<T>> = items.iter().map(|item| item.x.clone()).collect();
        let mut launches = 0;
        let mut rows = 0;
        for (s, layer) in self.layers.iter().enumerate() {
            let projected: Vec<ProjectedHeads<T>> =
                xs.iter().map(|x| layer.project_qkv(x)).collect();
            for (item, (_, kh, vh)) in items.iter().zip(&projected) {
                if !pool.try_extend_heads(item.state.layer_seqs()[s], kh, vh) {
                    rollback(pool);
                    return Err(ModelError::OutOfPages);
                }
            }
            if let Some(spec) = self.plans[self.layer_plan[s]].routing_spec() {
                for (item, (qh, _, _)) in items.iter().zip(&projected) {
                    for (h, q) in qh.iter().enumerate().take(self.heads) {
                        if let Err(e) = pool.extend_routing(item.state.layer_seqs()[s], spec, h, q)
                        {
                            rollback(pool);
                            return Err(e.into());
                        }
                    }
                }
            }
            let result = {
                let requests: Vec<AttentionRequest<'_, T>> = items
                    .iter()
                    .zip(&projected)
                    .zip(&priors)
                    .flat_map(|((item, (qh, _, _)), &prior)| {
                        let cache = pool.cache(item.state.layer_seqs()[s]);
                        (0..self.heads)
                            .map(move |h| {
                                AttentionRequest::windowed(&qh[h], cache.k(h), cache.v(h), prior)
                                    .with_routing(cache.routing(h))
                            })
                            .collect::<Vec<_>>()
                    })
                    .collect();
                rows += requests.iter().map(AttentionRequest::rows).sum::<usize>();
                launches += 1;
                engine.run_batch(&self.plans[self.layer_plan[s]], &requests)
            };
            let outs = match result {
                Ok(outs) => outs,
                Err(e) => {
                    rollback(pool);
                    return Err(e.into());
                }
            };
            for (x, head_outs) in xs.iter_mut().zip(outs.chunks(self.heads)) {
                let attn = layer.combine_heads(head_outs);
                *x = residual(x, &attn);
            }
        }
        Ok(ModelAdvance {
            outputs: xs,
            launches,
            rows,
        })
    }

    /// Prefill a prompt in query windows of `chunk` rows — one
    /// [`Self::advance_batched`] call per chunk — returning the
    /// `P × d_model` prompt outputs. On error the state is truncated
    /// back to where it started.
    pub fn forward_prefill_chunked(
        &self,
        engine: &AttentionEngine,
        pool: &mut PagePool<T>,
        state: &ModelKvState,
        x: &Matrix<T>,
        chunk: usize,
    ) -> Result<Matrix<T>, ModelError> {
        if chunk == 0 {
            return Err(ModelError::BadState {
                what: "prefill chunk size must be positive",
            });
        }
        let initial = state.tokens(pool);
        let mut out = Matrix::zeros(x.rows(), self.d_model);
        let mut done = 0;
        while done < x.rows() {
            let take = chunk.min(x.rows() - done);
            let window = x.rows_slice(done, done + take);
            let items = [ModelWorkItem { x: &window, state }];
            let adv = match self.advance_batched(engine, pool, &items) {
                Ok(adv) => adv,
                Err(e) => {
                    state.truncate(pool, initial);
                    return Err(e);
                }
            };
            for i in 0..take {
                out.row_mut(done + i).copy_from_slice(adv.outputs[0].row(i));
            }
            done += take;
        }
        Ok(out)
    }

    /// One KV-cached decode step for a single sequence: a 1-row
    /// [`Self::advance_batched`].
    pub fn forward_decode(
        &self,
        engine: &AttentionEngine,
        pool: &mut PagePool<T>,
        state: &ModelKvState,
        x_t: &Matrix<T>,
    ) -> Result<Matrix<T>, ModelError> {
        let outs = self.forward_decode_batched(engine, pool, &[ModelWorkItem { x: x_t, state }])?;
        Ok(outs.into_iter().next().expect("one item in, one out"))
    }

    /// Advance many sequences by one token each — all sequences × heads
    /// of every layer flattened into one launch per layer. Each item's
    /// input must be a single `1 × d_model` row.
    pub fn forward_decode_batched(
        &self,
        engine: &AttentionEngine,
        pool: &mut PagePool<T>,
        items: &[ModelWorkItem<'_, T>],
    ) -> Result<Vec<Matrix<T>>, ModelError> {
        if items.iter().any(|item| item.x.rows() != 1) {
            return Err(ModelError::BadState {
                what: "decode items must be single rows",
            });
        }
        Ok(self.advance_batched(engine, pool, items)?.outputs)
    }
}

impl<T> std::fmt::Debug for DecoderModel<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecoderModel")
            .field("pattern", &self.pattern.to_string())
            .field("plans", &self.plan_labels)
            .field("d_model", &self.d_model)
            .field("heads", &self.heads)
            .field("dk", &self.dk)
            .finish()
    }
}

/// One sequence's pending work in a batched model advance: the input
/// window (a prompt chunk, or a single decode row) plus the sequence's
/// per-layer KV state.
pub struct ModelWorkItem<'a, T> {
    /// Input window, `rows × d_model`.
    pub x: &'a Matrix<T>,
    /// The sequence's per-layer caches.
    pub state: &'a ModelKvState,
}

/// What one [`DecoderModel::advance_batched`] call did.
#[derive(Debug)]
pub struct ModelAdvance<T: Real> {
    /// One `rows × d_model` output per item, in item order.
    pub outputs: Vec<Matrix<T>>,
    /// Engine launches issued (one per layer).
    pub launches: usize,
    /// Query rows computed, summed over layers, items, and heads.
    pub rows: usize,
}

/// One sequence's KV state through a [`DecoderModel`]: one
/// [`PagePool`] entry per layer, so every page-accounting question —
/// admission budgets, preemption pressure, conservation — sums over all
/// layers.
///
/// All layers always hold the same number of cached tokens; a model
/// advance appends to every layer, and rollback truncates every layer.
#[derive(Debug)]
pub struct ModelKvState {
    seqs: Vec<SeqId>,
}

impl ModelKvState {
    /// Allocate an empty per-layer state for `model`. Allocation itself
    /// takes no pages — pages are taken as appends need them.
    pub fn allocate<T: Real>(model: &DecoderModel<'_, T>, pool: &mut PagePool<T>) -> Self {
        let seqs = (0..model.layers())
            .map(|_| pool.allocate_heads(model.heads(), model.dk(), model.dk()))
            .collect();
        ModelKvState { seqs }
    }

    /// Re-adopt retained per-layer caches (the resume path after an
    /// eviction), taking the pages their tokens occupy. All-or-nothing:
    /// when the pool cannot cover every layer, nothing stays adopted and
    /// the caches come back untouched, in order.
    pub fn adopt<T: Real>(
        caches: Vec<KvCache<T>>,
        pool: &mut PagePool<T>,
    ) -> Result<Self, Vec<KvCache<T>>> {
        let mut seqs = Vec::with_capacity(caches.len());
        let mut pending = caches.into_iter();
        while let Some(cache) = pending.next() {
            match pool.try_adopt(cache) {
                Ok(id) => seqs.push(id),
                Err(cache) => {
                    let mut returned: Vec<KvCache<T>> =
                        seqs.into_iter().map(|id| pool.release(id)).collect();
                    returned.push(cache);
                    returned.extend(pending);
                    return Err(returned);
                }
            }
        }
        Ok(ModelKvState { seqs })
    }

    /// Release every layer's pool entry, returning the caches (tokens
    /// intact) in layer order — what an evicted sequence retains.
    pub fn release<T: Real>(self, pool: &mut PagePool<T>) -> Vec<KvCache<T>> {
        self.seqs.into_iter().map(|id| pool.release(id)).collect()
    }

    /// Park the whole stack in a [`SwapArena`]: release every layer's
    /// pages to the pool and move the caches — K/V rows, f16 payloads,
    /// routing state — into the arena as one entry. `O(1)` in context
    /// length; the evict-and-swap half of preemption.
    ///
    /// The pages are returned to the pool unconditionally. When the arena
    /// refuses the stack (byte cap), the caches come back untouched in
    /// layer order and the caller keeps them inline or drops them
    /// (evict-and-recompute).
    pub fn swap_out<T: Real>(
        self,
        pool: &mut PagePool<T>,
        arena: &mut SwapArena<T>,
    ) -> Result<SwapTicket, Vec<KvCache<T>>> {
        arena.try_park(self.release(pool))
    }

    /// Resume a parked stack: take it from the arena and re-adopt every
    /// layer's pages atomically. When the pool cannot cover the whole
    /// stack, nothing is adopted and the stack is **re-parked** — the
    /// returned ticket replaces the spent one, and the sequence simply
    /// stays parked. (Re-parking cannot fail: the stack's bytes were just
    /// freed by the take.)
    pub fn swap_in<T: Real>(
        ticket: SwapTicket,
        arena: &mut SwapArena<T>,
        pool: &mut PagePool<T>,
    ) -> Result<Self, SwapTicket> {
        match Self::adopt(arena.take(ticket), pool) {
            Ok(state) => Ok(state),
            Err(caches) => Err(arena
                .try_park(caches)
                .unwrap_or_else(|_| panic!("re-park into just-freed arena bytes"))),
        }
    }

    /// Truncate every layer back to `tokens` cached tokens, returning
    /// excess pages to the pool — the transactional rollback path.
    pub fn truncate<T: Real>(&self, pool: &mut PagePool<T>, tokens: usize) {
        for &seq in &self.seqs {
            pool.truncate(seq, tokens);
        }
    }

    /// The per-layer pool handles, in layer order.
    pub fn layer_seqs(&self) -> &[SeqId] {
        &self.seqs
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.seqs.len()
    }

    /// Tokens cached per layer (all layers are equal).
    pub fn tokens<T: Real>(&self, pool: &PagePool<T>) -> usize {
        self.seqs.first().map_or(0, |&s| pool.cache(s).len())
    }

    /// Pages currently mapped, summed over all layers.
    pub fn pages_held<T: Real>(&self, pool: &PagePool<T>) -> usize {
        self.seqs.iter().map(|&s| pool.pages_held(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_core::AttentionKernel;
    use gpa_masks::GlobalSet;
    use gpa_tensor::init::gaussian_matrix;

    fn engine() -> AttentionEngine {
        AttentionEngine::with_threads(2)
    }

    fn fs_bindings<'p>(engine: &AttentionEngine, full_n: usize) -> Vec<(char, AttentionPlan<'p>)> {
        vec![
            (
                'F',
                engine
                    .compile(&[AttentionKernel::Local { n: full_n }])
                    .unwrap(),
            ),
            (
                'S',
                engine
                    .compile(&[AttentionKernel::Dilated1d { w: 2, r: 2 }])
                    .unwrap(),
            ),
        ]
    }

    fn model<'p>(engine: &AttentionEngine, pattern: &str, seed: u64) -> DecoderModel<'p, f64> {
        DecoderModel::new(
            LayerPattern::parse(pattern).unwrap(),
            fs_bindings(engine, 64),
            12,
            3,
            4,
            seed,
        )
        .unwrap()
    }

    #[test]
    fn compile_validates_bindings() {
        let e = engine();
        let pat = || LayerPattern::parse("FSF").unwrap();
        let mk = |bindings| DecoderModel::<f64>::new(pat(), bindings, 12, 3, 4, 0);
        assert!(matches!(
            mk(fs_bindings(&e, 8)[..1].to_vec().into_iter().collect()),
            Err(ModelError::Unbound { label: 'S' })
        ));
        let mut dup = fs_bindings(&e, 8);
        dup.push(('F', e.compile(&[AttentionKernel::Local { n: 1 }]).unwrap()));
        assert!(matches!(
            mk(dup),
            Err(ModelError::DuplicateBinding { label: 'F' })
        ));
        let mut unused = fs_bindings(&e, 8);
        unused.push(('X', e.compile(&[AttentionKernel::Local { n: 1 }]).unwrap()));
        assert!(matches!(
            mk(unused),
            Err(ModelError::UnusedBinding { label: 'X' })
        ));
        let mut dense = fs_bindings(&e, 8);
        dense[0].1 = e.compile(&[AttentionKernel::Flash]).unwrap();
        assert!(matches!(
            mk(dense),
            Err(ModelError::DensePlan { label: 'F' })
        ));
        assert!(matches!(
            DecoderModel::<f64>::new(pat(), fs_bindings(&e, 8), 0, 3, 4, 0),
            Err(ModelError::BadModel { .. })
        ));
        assert!(matches!(
            DecoderModel::<f64>::new(pat(), fs_bindings(&e, 8), 12, 0, 4, 0),
            Err(ModelError::BadModel { .. })
        ));
        assert!(matches!(
            DecoderModel::<f64>::new(pat(), fs_bindings(&e, 8), 12, 3, 0, 0),
            Err(ModelError::BadModel { .. })
        ));
    }

    #[test]
    fn compiled_model_exposes_its_shape() {
        let e = engine();
        let m = model(&e, "FSSF", 7);
        assert_eq!(m.layers(), 4);
        assert_eq!(m.distinct_plans(), 2);
        assert_eq!((m.d_model(), m.heads(), m.dk()), (12, 3, 4));
        assert_eq!(m.label_of(1), 'S');
        assert_eq!(m.plan_of(0).describe(), m.plan_of(3).describe());
        assert_eq!(m.pattern().to_string(), "FSSF");
        assert!(format!("{m:?}").contains("FSSF"));
        // Same arguments → bit-identical weights; different seed → not.
        let x = gaussian_matrix(6, 12, 1.0, 3);
        let a = m.forward(&e, &x).unwrap();
        let b = model(&e, "FSSF", 7).forward(&e, &x).unwrap();
        assert_eq!(a, b);
        let c = model(&e, "FSSF", 8).forward(&e, &x).unwrap();
        assert!(c.max_abs_diff(&a) > 1e-12);
        // Layers have distinct weights: a 2-layer stack differs from
        // applying layer 0 twice (pattern "FF" vs "F" applied twice).
        assert!(m.layer(0).d_model() == 12);
    }

    #[test]
    fn batched_advance_matches_independent_sequences_bitwise() {
        let e = engine();
        let m = model(&e, "FSF", 11);
        // Batched: two sequences in one pool.
        let mut pool: PagePool<f64> = PagePool::new(64, 2);
        let sa = ModelKvState::allocate(&m, &mut pool);
        let sb = ModelKvState::allocate(&m, &mut pool);
        let xa = gaussian_matrix(5, 12, 1.0, 40);
        let xb = gaussian_matrix(3, 12, 1.0, 41);
        let adv = m
            .advance_batched(
                &e,
                &mut pool,
                &[
                    ModelWorkItem { x: &xa, state: &sa },
                    ModelWorkItem { x: &xb, state: &sb },
                ],
            )
            .unwrap();
        assert_eq!(adv.outputs.len(), 2);
        assert_eq!(adv.outputs[0].shape(), (5, 12));
        assert_eq!(adv.launches, 3, "one launch per layer");
        assert_eq!(adv.rows, 3 * (5 + 3) * 3, "layers × rows × heads");
        assert_eq!((sa.tokens(&pool), sb.tokens(&pool)), (5, 3));
        assert_eq!(sa.pages_held(&pool), 3 * 3, "ceil(5/2) pages × 3 layers");
        pool.assert_page_invariants();
        // Independent: each sequence alone in its own pool.
        for (x, out) in [(&xa, &adv.outputs[0]), (&xb, &adv.outputs[1])] {
            let mut solo: PagePool<f64> = PagePool::new(64, 2);
            let st = ModelKvState::allocate(&m, &mut solo);
            let alone = m
                .advance_batched(&e, &mut solo, &[ModelWorkItem { x, state: &st }])
                .unwrap();
            assert_eq!(&alone.outputs[0], out, "batching must be bitwise-invisible");
        }
    }

    #[test]
    fn decode_is_a_one_row_advance() {
        let e = engine();
        let m = model(&e, "SF", 5);
        let mut pool: PagePool<f64> = PagePool::new(64, 4);
        let st = ModelKvState::allocate(&m, &mut pool);
        let x = gaussian_matrix(6, 12, 1.0, 9);
        let pre = m
            .forward_prefill_chunked(&e, &mut pool, &st, &x.rows_slice(0, 5), 2)
            .unwrap();
        assert_eq!(pre.shape(), (5, 12));
        assert_eq!(st.tokens(&pool), 5);
        let tok = x.rows_slice(5, 6);
        let via_decode = m.forward_decode(&e, &mut pool, &st, &tok).unwrap();
        // Rebuild the same state and advance with a 1-row window instead.
        let st2 = ModelKvState::allocate(&m, &mut pool);
        m.forward_prefill_chunked(&e, &mut pool, &st2, &x.rows_slice(0, 5), 2)
            .unwrap();
        let via_advance = m
            .advance_batched(
                &e,
                &mut pool,
                &[ModelWorkItem {
                    x: &tok,
                    state: &st2,
                }],
            )
            .unwrap();
        assert_eq!(via_decode, via_advance.outputs[0]);
        assert_eq!(st.tokens(&pool), 6);
        assert!(m
            .forward_decode_batched(&e, &mut pool, &[ModelWorkItem { x: &x, state: &st }])
            .is_err());
    }

    #[test]
    fn routed_layer_prefill_and_decode_match_square_forward_bitwise() {
        let e = engine();
        let coarse = e
            .compile(&[AttentionKernel::Routed {
                groups: 3,
                seed: 0x5EED,
                causal: true,
            }])
            .unwrap();
        let fine = e
            .compile(&[AttentionKernel::Routed {
                groups: 2,
                seed: 0xF00D,
                causal: true,
            }])
            .unwrap();
        let m: DecoderModel<'_, f64> = DecoderModel::new(
            LayerPattern::parse("RSR").unwrap(),
            vec![('R', coarse), ('S', fine)],
            12,
            3,
            4,
            21,
        )
        .unwrap();
        let x = gaussian_matrix(9, 12, 1.0, 33);
        let square = m.forward(&e, &x).unwrap();
        // Chunked prefill then token-by-token decode through the same
        // all-causal stack: token `i`'s group depends only on `q[i]`, so
        // incremental routing reproduces the square pass's groups exactly
        // and the causal members stream in the same ascending order —
        // outputs must be bitwise equal.
        let mut pool: PagePool<f64> = PagePool::new(64, 4);
        let st = ModelKvState::allocate(&m, &mut pool);
        let pre = m
            .forward_prefill_chunked(&e, &mut pool, &st, &x.rows_slice(0, 6), 4)
            .unwrap();
        for i in 0..6 {
            assert_eq!(pre.row(i), square.row(i), "prefill row {i}");
        }
        for t in 6..9 {
            let out = m
                .forward_decode(&e, &mut pool, &st, &x.rows_slice(t, t + 1))
                .unwrap();
            assert_eq!(out.row(0), square.row(t), "decode row {t}");
        }
        // Evict-and-resume keeps each layer's routing with its cache: the
        // released caches re-adopt and the next decode is still bitwise.
        let caches = st.release(&mut pool);
        let resumed = ModelKvState::adopt(caches, &mut pool).expect("pages are free");
        let extra = gaussian_matrix(1, 12, 1.0, 34);
        let after_resume = m.forward_decode(&e, &mut pool, &resumed, &extra).unwrap();
        let mut fresh: PagePool<f64> = PagePool::new(64, 4);
        let st2 = ModelKvState::allocate(&m, &mut fresh);
        m.forward_prefill_chunked(&e, &mut fresh, &st2, &x, 3)
            .unwrap();
        let never_evicted = m.forward_decode(&e, &mut fresh, &st2, &extra).unwrap();
        assert_eq!(after_resume, never_evicted, "resume must re-adopt routing");
        pool.assert_page_invariants();
    }

    #[test]
    fn out_of_pages_rolls_every_layer_back() {
        let e = engine();
        let m = model(&e, "FSF", 2);
        // 3 layers × 1 page each fit 3 tokens/layer; growing to a second
        // page per layer needs 3 more pages but only 1 remains — layer 0
        // grabs it, layer 1 fails, and the rollback must undo layer 0.
        let mut pool: PagePool<f64> = PagePool::new(4, 3);
        let st = ModelKvState::allocate(&m, &mut pool);
        let x = gaussian_matrix(3, 12, 1.0, 1);
        m.advance_batched(&e, &mut pool, &[ModelWorkItem { x: &x, state: &st }])
            .unwrap();
        assert_eq!(st.pages_held(&pool), 3);
        let more = gaussian_matrix(2, 12, 1.0, 2);
        let err = m
            .advance_batched(
                &e,
                &mut pool,
                &[ModelWorkItem {
                    x: &more,
                    state: &st,
                }],
            )
            .unwrap_err();
        assert_eq!(err, ModelError::OutOfPages);
        assert_eq!(st.tokens(&pool), 3, "failed advance must roll back");
        assert_eq!(st.pages_held(&pool), 3);
        pool.assert_page_invariants();
        // The prefill wrapper rolls all chunks back, not just the last.
        let big = gaussian_matrix(4, 12, 1.0, 3);
        assert!(m
            .forward_prefill_chunked(&e, &mut pool, &st, &big, 1)
            .is_err());
        assert_eq!(st.tokens(&pool), 3);
        pool.assert_page_invariants();
    }

    #[test]
    fn failed_launch_rolls_every_layer_back() {
        let e = engine();
        // A kv-pinned plan (Global pins kv_rows to its mask size) cannot
        // serve a growing cache: the first advance appends, then fails
        // validation at launch.
        let globals = GlobalSet::new(99, vec![0]);
        let pinned = e
            .compile(&[AttentionKernel::Global {
                globals: &globals,
                n_sub: 0,
            }])
            .unwrap();
        let local = e.compile(&[AttentionKernel::Local { n: 8 }]).unwrap();
        let m: DecoderModel<'_, f64> = DecoderModel::new(
            LayerPattern::parse("FS").unwrap(),
            vec![('F', local), ('S', pinned)],
            12,
            3,
            4,
            0,
        )
        .unwrap();
        let mut pool: PagePool<f64> = PagePool::new(16, 4);
        let st = ModelKvState::allocate(&m, &mut pool);
        let x = gaussian_matrix(3, 12, 1.0, 4);
        let err = m
            .advance_batched(&e, &mut pool, &[ModelWorkItem { x: &x, state: &st }])
            .unwrap_err();
        assert!(matches!(err, ModelError::Attn(_)));
        assert_eq!(st.tokens(&pool), 0, "layer F's append must roll back too");
        assert_eq!(st.pages_held(&pool), 0);
        pool.assert_page_invariants();
    }

    #[test]
    fn state_release_and_adopt_round_trip() {
        let e = engine();
        let m = model(&e, "FS", 6);
        let mut pool: PagePool<f64> = PagePool::new(4, 2);
        let st = ModelKvState::allocate(&m, &mut pool);
        let x = gaussian_matrix(3, 12, 1.0, 8);
        let out = m
            .advance_batched(&e, &mut pool, &[ModelWorkItem { x: &x, state: &st }])
            .unwrap();
        let caches = st.release(&mut pool);
        assert_eq!(caches.len(), 2);
        assert_eq!(caches[0].len(), 3);
        assert_eq!(pool.free_pages(), 4);
        // A squatter takes enough pages that only one layer fits: the
        // adopt must be all-or-nothing and return the caches in order.
        let squat = pool.allocate(2, 2);
        assert!(pool.try_extend(
            squat,
            &gaussian_matrix(3, 2, 1.0, 1),
            &gaussian_matrix(3, 2, 1.0, 2)
        ));
        let caches = match ModelKvState::adopt(caches, &mut pool) {
            Err(caches) => caches,
            Ok(_) => panic!("adopt must fail under page pressure"),
        };
        assert_eq!(caches.len(), 2);
        assert!(caches.iter().all(|c| c.len() == 3));
        pool.assert_page_invariants();
        // Squatter gone → adoption succeeds and the resumed state decodes
        // bitwise-identically to never having been evicted.
        pool.release(squat);
        let resumed = ModelKvState::adopt(caches, &mut pool).expect("pages are free");
        assert_eq!(resumed.tokens(&pool), 3);
        let tok = gaussian_matrix(1, 12, 1.0, 12);
        let after_resume = m.forward_decode(&e, &mut pool, &resumed, &tok).unwrap();
        let mut fresh: PagePool<f64> = PagePool::new(4, 2);
        let st2 = ModelKvState::allocate(&m, &mut fresh);
        let out2 = m
            .advance_batched(&e, &mut fresh, &[ModelWorkItem { x: &x, state: &st2 }])
            .unwrap();
        assert_eq!(out2.outputs[0], out.outputs[0]);
        let never_evicted = m.forward_decode(&e, &mut fresh, &st2, &tok).unwrap();
        assert_eq!(after_resume, never_evicted, "resume must be bitwise");
    }

    #[test]
    fn swap_out_and_in_round_trip_is_bitwise_and_stays_parked_under_pressure() {
        let e = engine();
        let m = model(&e, "FS", 6);
        let mut pool: PagePool<f64> = PagePool::new(4, 2);
        let mut arena: gpa_core::SwapArena<f64> = gpa_core::SwapArena::unbounded();
        let st = ModelKvState::allocate(&m, &mut pool);
        let x = gaussian_matrix(3, 12, 1.0, 8);
        m.advance_batched(&e, &mut pool, &[ModelWorkItem { x: &x, state: &st }])
            .unwrap();
        // Park: pages free, bytes move to the arena.
        let ticket = st.swap_out(&mut pool, &mut arena).expect("unbounded arena");
        assert_eq!(pool.free_pages(), 4);
        assert_eq!(arena.parked_tokens(), 6, "3 tokens x 2 layers");
        arena.assert_swap_invariants();
        pool.assert_page_invariants();
        // A squatter leaves room for only one layer: swap_in must adopt
        // nothing and re-park the stack under a fresh ticket.
        let squat = pool.allocate(2, 2);
        assert!(pool.try_extend(
            squat,
            &gaussian_matrix(3, 2, 1.0, 1),
            &gaussian_matrix(3, 2, 1.0, 2)
        ));
        let ticket = match ModelKvState::swap_in(ticket, &mut arena, &mut pool) {
            Err(reparked) => reparked,
            Ok(_) => panic!("swap_in must fail under page pressure"),
        };
        assert_eq!(arena.len(), 1, "the stack stays parked");
        assert_eq!(arena.parked_tokens(), 6);
        arena.assert_swap_invariants();
        pool.assert_page_invariants();
        // Squatter gone → the splice succeeds and decodes bitwise vs a
        // never-evicted run.
        pool.release(squat);
        let resumed = ModelKvState::swap_in(ticket, &mut arena, &mut pool).expect("pages are free");
        assert!(arena.is_empty());
        assert_eq!(arena.parked_bytes(), 0);
        assert_eq!(resumed.tokens(&pool), 3);
        let tok = gaussian_matrix(1, 12, 1.0, 12);
        let after_resume = m.forward_decode(&e, &mut pool, &resumed, &tok).unwrap();
        let mut fresh: PagePool<f64> = PagePool::new(4, 2);
        let st2 = ModelKvState::allocate(&m, &mut fresh);
        m.advance_batched(&e, &mut fresh, &[ModelWorkItem { x: &x, state: &st2 }])
            .unwrap();
        let never_evicted = m.forward_decode(&e, &mut fresh, &st2, &tok).unwrap();
        assert_eq!(after_resume, never_evicted, "swap resume must be bitwise");
    }

    #[test]
    fn mismatched_states_and_inputs_are_rejected() {
        let e = engine();
        let m = model(&e, "FSF", 3);
        let other = model(&e, "FS", 3);
        let mut pool: PagePool<f64> = PagePool::new(16, 4);
        let st = ModelKvState::allocate(&m, &mut pool);
        let short = ModelKvState::allocate(&other, &mut pool);
        let x = gaussian_matrix(2, 12, 1.0, 5);
        let wrong_width = gaussian_matrix(2, 11, 1.0, 5);
        let empty = Matrix::<f64>::zeros(0, 12);
        for (x, state, what) in [
            (&wrong_width, &st, "width"),
            (&empty, &st, "empty"),
            (&x, &short, "layer count"),
        ] {
            let err = m
                .advance_batched(&e, &mut pool, &[ModelWorkItem { x, state }])
                .unwrap_err();
            assert!(matches!(err, ModelError::BadState { .. }), "{what}");
        }
        let dup = m
            .advance_batched(
                &e,
                &mut pool,
                &[
                    ModelWorkItem { x: &x, state: &st },
                    ModelWorkItem { x: &x, state: &st },
                ],
            )
            .unwrap_err();
        assert_eq!(
            dup,
            ModelError::BadState {
                what: "two items share a ModelKvState",
            }
        );
        assert!(m
            .forward_prefill_chunked(&e, &mut pool, &st, &x, 0)
            .is_err());
        assert!(m.forward(&e, &wrong_width).is_err());
        assert_eq!(st.tokens(&pool), 0);
        pool.assert_page_invariants();
    }
}
