//! Layer-pattern specs: which attention plan each decoder layer runs.
//!
//! Production hybrid stacks interleave full and sparse attention —
//! `"FFFSSSSSSSSFFF"` reads as three dense bookend layers on either side
//! of eight sparse middle layers. A [`LayerPattern`] is that string,
//! parsed once: each character is a **label**, and
//! [`DecoderModel::new`](crate::DecoderModel::new) binds every distinct
//! label to a compiled [`AttentionPlan`](gpa_core::AttentionPlan). The
//! grammar is deliberately open-ended: any ASCII alphanumeric character
//! is a valid label, so `"FSDSF"` can mix three different plans, not just
//! Full/Sparse.

use crate::error::ModelError;
use std::fmt;
use std::str::FromStr;

/// A parsed layer-pattern string: one label per decoder layer, in stack
/// order (index 0 is the first layer the input passes through).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LayerPattern {
    labels: Vec<char>,
}

impl LayerPattern {
    /// Parse a pattern string. Every character is one layer's label and
    /// must be ASCII alphanumeric; the string must be non-empty.
    pub fn parse(spec: &str) -> Result<Self, ModelError> {
        if spec.is_empty() {
            return Err(ModelError::BadPattern {
                what: "pattern must name at least one layer",
            });
        }
        if !spec.chars().all(|c| c.is_ascii_alphanumeric()) {
            return Err(ModelError::BadPattern {
                what: "labels must be ASCII alphanumeric",
            });
        }
        Ok(LayerPattern {
            labels: spec.chars().collect(),
        })
    }

    /// A pattern of `layers` identical labels — the all-`'F'` (or
    /// all-anything) stack.
    ///
    /// # Panics
    /// Panics when `layers` is zero or `label` is not ASCII alphanumeric.
    pub fn uniform(label: char, layers: usize) -> Self {
        assert!(layers > 0, "pattern must name at least one layer");
        assert!(
            label.is_ascii_alphanumeric(),
            "labels must be ASCII alphanumeric"
        );
        LayerPattern {
            labels: vec![label; layers],
        }
    }

    /// Number of layers.
    #[allow(clippy::len_without_is_empty)] // parse rejects empty patterns
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// The per-layer labels in stack order.
    pub fn labels(&self) -> &[char] {
        &self.labels
    }

    /// The distinct labels in order of first appearance — the set a
    /// binding list must cover exactly.
    pub fn distinct(&self) -> Vec<char> {
        let mut seen = Vec::new();
        for &c in &self.labels {
            if !seen.contains(&c) {
                seen.push(c);
            }
        }
        seen
    }
}

impl fmt::Display for LayerPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &c in &self.labels {
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl FromStr for LayerPattern {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        LayerPattern::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_round_trips() {
        let p = LayerPattern::parse("FFFSSSSSSSSFFF").unwrap();
        assert_eq!(p.len(), 14);
        assert_eq!(p.to_string(), "FFFSSSSSSSSFFF");
        assert_eq!(p.distinct(), vec!['F', 'S']);
        assert_eq!(p.labels()[3], 'S');
        let q: LayerPattern = "F1S2".parse().unwrap();
        assert_eq!(q.distinct(), vec!['F', '1', 'S', '2']);
    }

    #[test]
    fn uniform_matches_parsed() {
        assert_eq!(
            LayerPattern::uniform('F', 4),
            LayerPattern::parse("FFFF").unwrap()
        );
    }

    #[test]
    fn rejects_bad_specs() {
        assert_eq!(
            LayerPattern::parse(""),
            Err(ModelError::BadPattern {
                what: "pattern must name at least one layer",
            })
        );
        assert!(LayerPattern::parse("FS F").is_err());
        assert!(LayerPattern::parse("FS-F").is_err());
        assert!(LayerPattern::parse("héh").is_err());
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn uniform_rejects_zero_layers() {
        let _ = LayerPattern::uniform('F', 0);
    }
}
