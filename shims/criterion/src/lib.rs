#![warn(missing_docs)]
//! Offline stand-in for the crates.io
//! [`criterion`](https://docs.rs/criterion/0.5) crate.
//!
//! Implements the harness subset the workspace's `benches/*.rs` use —
//! [`Criterion::benchmark_group`], the group builder methods,
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is honest but simple: per
//! benchmark it runs a timed warm-up, then `sample_size` samples (each
//! sized to fit the measurement budget) and prints min/mean times as plain
//! text. There is no statistical analysis, HTML report, or baseline
//! comparison; swap the real criterion back in for publication-quality
//! numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter value.
    pub fn new<S: Display, P: Display>(function_id: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }
}

/// Runs one benchmark body repeatedly; handed to the `bench_*` closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher<'_> {
    /// Measure `body` (its return value is sunk through
    /// [`std::hint::black_box`] so the work is not optimized away).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // One untimed call to page everything in, then estimate the cost to
        // size batches.
        std::hint::black_box(body());
        let probe_start = Instant::now();
        std::hint::black_box(body());
        let per_call = probe_start.elapsed().max(Duration::from_nanos(1));

        let budget = self
            .measurement_time
            .div_f64(self.sample_size.max(1) as f64);
        let batch = (budget.as_nanos() / per_call.as_nanos().max(1)).clamp(1, 1_000_000) as usize;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(body());
            }
            self.samples.push(start.elapsed().div_f64(batch as f64));
        }
    }
}

/// A named set of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before measurement. The shim folds warm-up
    /// into its initial probe, so this only has to parse, not steer.
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t.max(Duration::from_millis(1));
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.run_one(id.to_string(), |b| body(b));
        self
    }

    /// Benchmark a closure that receives a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.run_one(id.id, |b| body(b, input));
        self
    }

    fn run_one<F: FnMut(&mut Bencher<'_>)>(&mut self, id: String, mut body: F) {
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        body(&mut bencher);
        let label = format!("{}/{}", self.name, id);
        if samples.is_empty() {
            println!("{label:<60} (no samples)");
            return;
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let sum: Duration = samples.iter().sum();
        let mean = sum.div_f64(samples.len() as f64);
        println!(
            "{label:<60} min {:>12.3?}   mean {:>12.3?}   ({} samples)",
            min,
            mean,
            samples.len(),
        );
    }

    /// End the group (upstream flushes reports here; the shim prints as it
    /// goes, so this only consumes the group).
    pub fn finish(self) {}
}

/// Top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            _criterion: self,
        }
    }
}

/// Collect benchmark functions into one group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce the `main` function running every group, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_selftest");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        let n = 100u64;
        group.bench_with_input(BenchmarkId::new("sum_to", n), &n, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_samples() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
    }
}
