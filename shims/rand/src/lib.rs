#![warn(missing_docs)]
//! Offline stand-in for the crates.io [`rand`](https://docs.rs/rand/0.8)
//! crate.
//!
//! This build environment has no network access, so the workspace vendors
//! the *exact* API subset it consumes: [`rngs::StdRng`] + [`SeedableRng`],
//! the [`RngCore`]/[`Rng`] traits, [`distributions::Uniform`] sampling, and
//! [`seq::SliceRandom`] shuffling. The generator is a fixed-increment
//! SplitMix64 — statistically solid for workload generation and test-input
//! sampling, deterministic per seed, and *not* a drop-in bit-for-bit match
//! for upstream `rand` streams (nothing in this workspace relies on that).

use std::ops::Range;

/// Streaming pseudo-random generator interface (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods layered over [`RngCore`]
/// (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from a half-open index range (`range` must be non-empty).
    fn gen_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range on an empty range");
        let span = (range.end - range.start) as u64;
        // Multiply-shift range reduction; span ≪ 2⁶⁴ makes the bias
        // unmeasurable for our workloads.
        let wide = (self.next_u64() as u128) * (span as u128);
        range.start + (wide >> 64) as usize
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// 64-bit state, fixed Weyl increment, output mixed through two
    /// xor-multiply rounds (Steele et al., "Fast splittable pseudorandom
    /// number generators", OOPSLA 2014).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Distribution sampling, mirroring `rand::distributions`.
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T` (subset of
    /// `rand::distributions::Distribution`).
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a half-open `[lo, hi)` interval of `f64`.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform {
        lo: f64,
        span: f64,
    }

    impl Uniform {
        /// Uniform over `[lo, hi)`. Requires `lo < hi`.
        pub fn new(lo: f64, hi: f64) -> Self {
            assert!(lo < hi, "Uniform::new on an empty range [{lo}, {hi})");
            Uniform { lo, span: hi - lo }
        }
    }

    impl Distribution<f64> for Uniform {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53-bit mantissa-uniform in [0, 1).
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.lo + u * self.span
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place slice randomization (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle of the whole slice.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_stays_in_range_and_fills_it() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = Uniform::new(-2.0, 3.0);
        let mut lo_half = 0usize;
        for _ in 0..10_000 {
            let v = dist.sample(&mut rng);
            assert!((-2.0..3.0).contains(&v));
            if v < 0.5 {
                lo_half += 1;
            }
        }
        // [−2, 0.5) is half the mass; a fair generator lands near 5000.
        assert!((4500..5500).contains(&lo_half), "lo_half = {lo_half}");
    }

    #[test]
    fn gen_range_covers_all_buckets() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = [0usize; 5];
        for _ in 0..5000 {
            hits[rng.gen_range(0..5)] += 1;
        }
        assert!(hits.iter().all(|&h| h > 800), "hits = {hits:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }
}
