#![warn(missing_docs)]
//! Offline stand-in for the crates.io
//! [`crossbeam`](https://docs.rs/crossbeam/0.8) crate.
//!
//! Provides the one thing this workspace uses: an unbounded
//! multi-producer/**multi-consumer** channel (`std::sync::mpsc` receivers
//! are single-consumer, so they cannot back a shared worker-pool job
//! queue). Built on a `Mutex<VecDeque>` + `Condvar`; disconnection is
//! tracked by a live-sender count so blocked receivers wake and error out
//! when the last [`channel::Sender`] drops — the mechanism `gpa-parallel`'s
//! pool uses for clean shutdown.

pub mod channel {
    //! Unbounded MPMC channel (subset of `crossbeam::channel`).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Create an unbounded channel; both halves are cloneable.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message like `crossbeam::channel::SendError`.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            // Like upstream: the payload may not be Debug, elide it.
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Producing half of the channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, waking one blocked receiver.
        ///
        /// This shim never observes receiver disconnection (receivers only
        /// disappear when the whole channel does), so `send` always
        /// succeeds; the `Result` mirrors the crossbeam signature.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
            state.queue.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
            state.senders += 1;
            drop(state);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                // Wake every blocked receiver so it can observe disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    /// Consuming half of the channel; clones share one queue (each message
    /// is delivered to exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Dequeue the next message, blocking while the channel is empty.
        /// Errors once the channel is empty *and* all senders dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};
    use std::collections::BTreeSet;

    #[test]
    fn fan_out_delivers_each_message_once() {
        let (tx, rx) = unbounded::<usize>();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let mut all = BTreeSet::new();
        let mut total = 0;
        for w in workers {
            let got = w.join().unwrap();
            total += got.len();
            all.extend(got);
        }
        assert_eq!(total, 1000, "no duplicates");
        assert_eq!(all.len(), 1000, "no losses");
    }

    #[test]
    fn recv_errors_after_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9), "buffered messages drain first");
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn cloned_senders_keep_channel_alive() {
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(1).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        drop(tx2);
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
