#![warn(missing_docs)]
//! Offline stand-in for the crates.io
//! [`crossbeam-deque`](https://docs.rs/crossbeam-deque/0.8) crate
//! (published under the `crossbeam` umbrella).
//!
//! Provides the work-stealing substrate `gpa-parallel`'s pool is built on,
//! implemented with plain `std` atomics:
//!
//! - [`deque::Worker`] — a bounded Chase–Lev deque. The owning worker
//!   pushes and pops at the *bottom* (LIFO); thieves steal from the *top*
//!   (FIFO) through [`deque::Stealer`] handles. Single-word indices plus a
//!   fixed power-of-two ring buffer make every operation lock-free; the
//!   last-element owner/thief race is resolved by a compare-exchange on
//!   `top` exactly as in Chase & Lev's original algorithm (with the
//!   fences from Lê et al., "Correct and Efficient Work-Stealing for
//!   Weak Memory Models").
//! - [`deque::Injector`] — the shared MPMC queue launches are submitted
//!   through, a Vyukov-style bounded ring with per-slot sequence numbers
//!   (ABA-safe without tagged pointers or deferred reclamation).
//!   [`deque::Injector::steal_batch_and_pop`] moves a batch into a
//!   worker's deque and hands one task back, the crossbeam idiom for
//!   draining the global queue.
//! - [`deque::Steal`] — the three-valued steal result (`Empty` /
//!   `Success` / `Retry`) callers loop on.
//!
//! ## API subset & deviations from upstream (shim-parity watch)
//!
//! Upstream `crossbeam_deque` grows buffers dynamically and reclaims them
//! through `crossbeam-epoch`. This shim has no garbage collector, so both
//! containers are **bounded** rings sized at construction:
//!
//! - `Worker::with_capacity(cap)` replaces `Worker::new_lifo()`;
//!   [`deque::Worker::push`] returns `Err(task)` when the ring is full
//!   (callers overflow into the injector) instead of reallocating.
//! - `Injector::with_capacity(cap)` replaces `Injector::new()`;
//!   [`deque::Injector::push`] spins (with backoff) for a slot when the
//!   ring is momentarily full rather than allocating a new block. The
//!   pool sizes the ring far above its worst-case occupancy (a handful of
//!   jobs per in-flight launch), so the spin path is effectively dead
//!   code outside stress tests.
//!
//! If this build environment ever gains crates.io access, swap this shim
//! for `crossbeam-deque` behind the same manifest name and replace
//! `with_capacity(_)` calls with the unbounded constructors.

pub mod deque {
    //! Work-stealing deque + injector (subset of `crossbeam_deque`).

    use std::cell::{Cell, UnsafeCell};
    use std::marker::PhantomData;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{fence, AtomicIsize, AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Result of a steal attempt.
    #[derive(Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// A concurrent operation interfered; retrying may succeed.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }

        /// True when the result is [`Steal::Retry`].
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        /// True when the result is [`Steal::Empty`].
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// Chase–Lev ring buffer shared by one owner and any number of
    /// thieves. `top` only ever increases (steals and the owner's
    /// last-element claim); `bottom` is owned by the worker.
    struct ChaseLev<T> {
        top: AtomicIsize,
        bottom: AtomicIsize,
        slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
        mask: usize,
    }

    // SAFETY: slot access is mediated by the top/bottom protocol — a slot
    // is written only by the owner while unclaimed, and read exactly once
    // by whoever wins the index (owner pop or successful steal CAS).
    unsafe impl<T: Send> Sync for ChaseLev<T> {}
    unsafe impl<T: Send> Send for ChaseLev<T> {}

    impl<T> ChaseLev<T> {
        #[inline]
        fn slot(&self, index: isize) -> *mut MaybeUninit<T> {
            self.slots[index as usize & self.mask].get()
        }
    }

    impl<T> Drop for ChaseLev<T> {
        fn drop(&mut self) {
            // Exclusive access: drop every task still in [top, bottom).
            let top = *self.top.get_mut();
            let bottom = *self.bottom.get_mut();
            for i in top..bottom {
                unsafe { (*self.slot(i)).assume_init_drop() };
            }
        }
    }

    /// Owner handle of a work-stealing deque: LIFO push/pop at the bottom.
    ///
    /// Not `Sync` — only the owning thread may push or pop. Cloneable
    /// [`Stealer`]s provide concurrent FIFO access to the top.
    pub struct Worker<T> {
        inner: Arc<ChaseLev<T>>,
        /// `Cell` makes the handle `!Sync`, enforcing single-owner access.
        _not_sync: PhantomData<Cell<()>>,
    }

    impl<T> Worker<T> {
        /// Deque with room for `capacity` tasks (rounded up to a power of
        /// two, at least 2).
        pub fn with_capacity(capacity: usize) -> Self {
            let cap = capacity.max(2).next_power_of_two();
            let slots = (0..cap)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect::<Vec<_>>()
                .into_boxed_slice();
            Worker {
                inner: Arc::new(ChaseLev {
                    top: AtomicIsize::new(0),
                    bottom: AtomicIsize::new(0),
                    slots,
                    mask: cap - 1,
                }),
                _not_sync: PhantomData,
            }
        }

        /// A new stealer handle onto this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }

        /// Push at the bottom. Returns `Err(task)` when the ring is full
        /// (upstream grows instead; callers overflow to the injector).
        pub fn push(&self, task: T) -> Result<(), T> {
            let q = &*self.inner;
            let b = q.bottom.load(Ordering::Relaxed);
            let t = q.top.load(Ordering::Acquire);
            if b.wrapping_sub(t) >= (q.mask + 1) as isize {
                return Err(task);
            }
            unsafe { (*q.slot(b)).write(task) };
            q.bottom.store(b.wrapping_add(1), Ordering::Release);
            Ok(())
        }

        /// Pop from the bottom (the task pushed most recently).
        pub fn pop(&self) -> Option<T> {
            let q = &*self.inner;
            let b = q.bottom.load(Ordering::Relaxed).wrapping_sub(1);
            q.bottom.store(b, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            let t = q.top.load(Ordering::Relaxed);
            if t > b {
                // Empty: restore bottom.
                q.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
                return None;
            }
            if t == b {
                // Last element: race any thief for it via `top`.
                let won = q
                    .top
                    .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                q.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
                return won.then(|| unsafe { (*q.slot(b)).assume_init_read() });
            }
            Some(unsafe { (*q.slot(b)).assume_init_read() })
        }

        /// True when the deque is observed empty.
        pub fn is_empty(&self) -> bool {
            let q = &*self.inner;
            q.top.load(Ordering::Acquire) >= q.bottom.load(Ordering::Acquire)
        }

        /// Number of tasks observed in the deque.
        pub fn len(&self) -> usize {
            let q = &*self.inner;
            let t = q.top.load(Ordering::Acquire);
            let b = q.bottom.load(Ordering::Acquire);
            b.wrapping_sub(t).max(0) as usize
        }
    }

    /// Thief handle onto a [`Worker`]'s deque: FIFO steal from the top.
    pub struct Stealer<T> {
        inner: Arc<ChaseLev<T>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steal the task at the top (the oldest task).
        pub fn steal(&self) -> Steal<T> {
            let q = &*self.inner;
            let t = q.top.load(Ordering::Acquire);
            fence(Ordering::SeqCst);
            let b = q.bottom.load(Ordering::Acquire);
            if t >= b {
                return Steal::Empty;
            }
            // Speculative read before the claim: if the CAS below fails,
            // someone else took index `t` and this byte copy is forgotten
            // without ever being treated as a live `T`.
            let task = unsafe { (*q.slot(t)).assume_init_read() };
            if q.top
                .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                std::mem::forget(task);
                return Steal::Retry;
            }
            Steal::Success(task)
        }

        /// True when the deque is observed empty.
        pub fn is_empty(&self) -> bool {
            let q = &*self.inner;
            q.top.load(Ordering::Acquire) >= q.bottom.load(Ordering::Acquire)
        }
    }

    /// One slot of the injector ring: `sequence` encodes whether the slot
    /// is empty (== index), full (== index + 1), or recycled for a later
    /// lap (> index + 1), which is what makes the ring ABA-safe.
    struct Slot<T> {
        sequence: AtomicUsize,
        value: UnsafeCell<MaybeUninit<T>>,
    }

    /// Shared MPMC injector queue (Vyukov bounded ring).
    ///
    /// FIFO across [`Injector::push`]/[`Injector::steal`]; every operation
    /// is a load + CAS pair — no locks anywhere.
    pub struct Injector<T> {
        head: AtomicUsize,
        tail: AtomicUsize,
        slots: Box<[Slot<T>]>,
        mask: usize,
    }

    // SAFETY: slot payloads are published/consumed through the per-slot
    // sequence number protocol (write before Release store, read after
    // Acquire load of the matching sequence value).
    unsafe impl<T: Send> Sync for Injector<T> {}
    unsafe impl<T: Send> Send for Injector<T> {}

    /// How many tasks one [`Injector::steal_batch_and_pop`] moves at most.
    const MAX_BATCH: usize = 16;

    impl<T> Injector<T> {
        /// Injector with room for `capacity` tasks (rounded up to a power
        /// of two, at least 2).
        pub fn with_capacity(capacity: usize) -> Self {
            let cap = capacity.max(2).next_power_of_two();
            let slots = (0..cap)
                .map(|i| Slot {
                    sequence: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect::<Vec<_>>()
                .into_boxed_slice();
            Injector {
                head: AtomicUsize::new(0),
                tail: AtomicUsize::new(0),
                slots,
                mask: cap - 1,
            }
        }

        /// Enqueue at the tail. When the ring is momentarily full, spins
        /// with backoff until consumers free a slot (upstream allocates a
        /// new block instead; see the module docs on sizing).
        pub fn push(&self, task: T) {
            let mut task = task;
            let mut spins = 0u32;
            loop {
                match self.try_push(task) {
                    Ok(()) => return,
                    Err(back) => {
                        task = back;
                        // Ring full: let consumers run.
                        spins += 1;
                        if spins < 16 {
                            std::hint::spin_loop();
                        } else {
                            std::thread::yield_now();
                        }
                    }
                }
            }
        }

        /// Enqueue at the tail, failing when the ring is full.
        pub fn try_push(&self, task: T) -> Result<(), T> {
            let mut pos = self.tail.load(Ordering::Relaxed);
            loop {
                let slot = &self.slots[pos & self.mask];
                let seq = slot.sequence.load(Ordering::Acquire);
                let dif = seq as isize - pos as isize;
                if dif == 0 {
                    // Slot free for this lap: claim it.
                    match self.tail.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            unsafe { (*slot.value.get()).write(task) };
                            slot.sequence.store(pos.wrapping_add(1), Ordering::Release);
                            return Ok(());
                        }
                        Err(now) => pos = now,
                    }
                } else if dif < 0 {
                    // The slot still holds a task from the previous lap.
                    return Err(task);
                } else {
                    pos = self.tail.load(Ordering::Relaxed);
                }
            }
        }

        /// Dequeue from the head.
        pub fn steal(&self) -> Steal<T> {
            let mut pos = self.head.load(Ordering::Relaxed);
            loop {
                let slot = &self.slots[pos & self.mask];
                let seq = slot.sequence.load(Ordering::Acquire);
                let dif = seq as isize - pos.wrapping_add(1) as isize;
                if dif == 0 {
                    match self.head.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            let task = unsafe { (*slot.value.get()).assume_init_read() };
                            slot.sequence
                                .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                            return Steal::Success(task);
                        }
                        Err(_) => return Steal::Retry,
                    }
                } else if dif < 0 {
                    return Steal::Empty;
                } else {
                    pos = self.head.load(Ordering::Relaxed);
                }
            }
        }

        /// Steal a batch of tasks, pushing all but the first into `dest`
        /// and returning that first one — the crossbeam idiom for moving
        /// global work onto a worker's own deque in one go. Takes at most
        /// half the observed queue (capped at `MAX_BATCH`) so concurrent
        /// thieves still find work.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let limit = (self.len().div_ceil(2)).clamp(1, MAX_BATCH);
            let first = match self.steal() {
                Steal::Success(task) => task,
                other => return other,
            };
            for _ in 1..limit {
                match self.steal() {
                    Steal::Success(task) => {
                        if let Err(task) = dest.push(task) {
                            // Destination full: hand the task back.
                            self.push(task);
                            break;
                        }
                    }
                    _ => break,
                }
            }
            Steal::Success(first)
        }

        /// True when the queue is observed empty.
        pub fn is_empty(&self) -> bool {
            let head = self.head.load(Ordering::Acquire);
            let tail = self.tail.load(Ordering::Acquire);
            tail <= head
        }

        /// Number of tasks observed in the queue.
        pub fn len(&self) -> usize {
            let head = self.head.load(Ordering::Acquire);
            let tail = self.tail.load(Ordering::Acquire);
            tail.saturating_sub(head)
        }
    }

    impl<T> Drop for Injector<T> {
        fn drop(&mut self) {
            // Exclusive access: drain every slot still holding a task.
            let head = *self.head.get_mut();
            let tail = *self.tail.get_mut();
            for pos in head..tail {
                let slot = &mut self.slots[pos & self.mask];
                unsafe { (*slot.value.get()).assume_init_drop() };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn worker_lifo_pop_fifo_steal() {
        let w: Worker<u32> = Worker::with_capacity(8);
        let s = w.stealer();
        for i in 0..4 {
            w.push(i).unwrap();
        }
        assert_eq!(w.len(), 4);
        assert_eq!(w.pop(), Some(3), "owner pops LIFO");
        assert_eq!(s.steal(), Steal::Success(0), "thief steals FIFO");
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
        assert!(w.is_empty() && s.is_empty());
    }

    #[test]
    fn worker_push_fails_when_full() {
        let w: Worker<u8> = Worker::with_capacity(2);
        w.push(1).unwrap();
        w.push(2).unwrap();
        assert_eq!(w.push(3), Err(3));
        assert_eq!(w.pop(), Some(2));
        w.push(3).unwrap();
    }

    #[test]
    fn injector_fifo_and_full() {
        let inj: Injector<u8> = Injector::with_capacity(4);
        for i in 0..4 {
            inj.try_push(i).unwrap();
        }
        assert_eq!(inj.try_push(9), Err(9));
        assert_eq!(inj.len(), 4);
        for i in 0..4 {
            assert_eq!(inj.steal(), Steal::Success(i));
        }
        assert!(inj.steal().is_empty());
        assert!(inj.is_empty());
    }

    #[test]
    fn steal_batch_moves_work_onto_the_deque() {
        let inj: Injector<u32> = Injector::with_capacity(64);
        for i in 0..10 {
            inj.push(i);
        }
        let w: Worker<u32> = Worker::with_capacity(64);
        let first = inj.steal_batch_and_pop(&w).success().unwrap();
        assert_eq!(first, 0, "first task is handed back directly");
        assert!(!w.is_empty(), "the rest landed on the deque");
        let mut got = vec![first];
        while let Some(v) = w.pop() {
            got.push(v);
        }
        while let Steal::Success(v) = inj.steal() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn drop_mid_flight_runs_destructors() {
        // Tasks still queued when the container drops must be dropped
        // exactly once — the "drop-mid-flight" shutdown scenario.
        struct Token(Arc<AtomicUsize>);
        impl Drop for Token {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));

        let w: Worker<Token> = Worker::with_capacity(8);
        for _ in 0..5 {
            w.push(Token(Arc::clone(&drops))).ok().unwrap();
        }
        drop(w.pop()); // one consumed
        drop(w);
        assert_eq!(drops.load(Ordering::Relaxed), 5);

        drops.store(0, Ordering::Relaxed);
        let inj: Injector<Token> = Injector::with_capacity(8);
        for _ in 0..6 {
            inj.push(Token(Arc::clone(&drops)));
        }
        drop(inj.steal().success()); // one consumed
        drop(inj);
        assert_eq!(drops.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn owner_and_thieves_partition_the_stream() {
        // 4 thieves + 1 owner over one deque; every pushed value must be
        // taken exactly once.
        let w: Worker<usize> = Worker::with_capacity(1024);
        let total = 20_000usize;
        let stop = Arc::new(AtomicUsize::new(0));
        let thieves: Vec<_> = (0..4)
            .map(|_| {
                let s = w.stealer();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match s.steal() {
                            Steal::Success(v) => got.push(v),
                            Steal::Retry => std::hint::spin_loop(),
                            Steal::Empty => {
                                if stop.load(Ordering::Acquire) == 1 {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        let mut owned = Vec::new();
        let mut next = 0usize;
        while next < total {
            if w.push(next).is_ok() {
                next += 1;
            } else if let Some(v) = w.pop() {
                owned.push(v);
            }
        }
        while let Some(v) = w.pop() {
            owned.push(v);
        }
        stop.store(1, Ordering::Release);
        let mut all = BTreeSet::new();
        let mut count = owned.len();
        all.extend(owned);
        for t in thieves {
            let got = t.join().unwrap();
            count += got.len();
            all.extend(got);
        }
        assert_eq!(count, total, "no duplicates");
        assert_eq!(all.len(), total, "no losses");
        assert_eq!(all.iter().next_back(), Some(&(total - 1)));
    }

    #[test]
    fn injector_mpmc_partition() {
        let inj = Arc::new(Injector::<usize>::with_capacity(256));
        let producers = 3usize;
        let per = 5_000usize;
        let live = Arc::new(AtomicUsize::new(producers));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let inj = Arc::clone(&inj);
                let live = Arc::clone(&live);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match inj.steal() {
                            Steal::Success(v) => got.push(v),
                            Steal::Retry => std::hint::spin_loop(),
                            Steal::Empty => {
                                if live.load(Ordering::Acquire) == 0 && inj.is_empty() {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let inj = Arc::clone(&inj);
                let live = Arc::clone(&live);
                std::thread::spawn(move || {
                    for i in 0..per {
                        inj.push(p * per + i);
                    }
                    live.fetch_sub(1, Ordering::Release);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut all = BTreeSet::new();
        let mut count = 0;
        for c in consumers {
            let got = c.join().unwrap();
            count += got.len();
            all.extend(got);
        }
        assert_eq!(count, producers * per, "no duplicates");
        assert_eq!(all.len(), producers * per, "no losses");
    }
}

#[cfg(test)]
mod stress {
    //! Long-running seeded stress harness, gated behind `GPA_STRESS` like
    //! the serving-simulation soak (no registry access, so no `loom`; this
    //! drives real threads through adversarial interleavings instead).

    use super::deque::{Injector, Steal, Worker};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn stress_enabled() -> bool {
        std::env::var("GPA_STRESS").is_ok_and(|v| v != "0")
    }

    /// Tiny deterministic RNG so every run of the harness explores the
    /// same interleaving *pressure* (the actual interleavings are up to
    /// the scheduler, which is the point).
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn stress_owner_pop_vs_steal_interleavings() {
        if !stress_enabled() {
            return;
        }
        // Many rounds of: owner pushes a seeded burst and mixes pops with
        // the thieves' steals; the union of everything taken must be the
        // exact set pushed, every round.
        for seed in 1u64..=4 {
            let w: Worker<u64> = Worker::with_capacity(64);
            let taken = Arc::new(AtomicUsize::new(0));
            let stop = Arc::new(AtomicUsize::new(0));
            let sum = Arc::new(AtomicUsize::new(0));
            let thieves: Vec<_> = (0..3)
                .map(|_| {
                    let s = w.stealer();
                    let stop = Arc::clone(&stop);
                    let taken = Arc::clone(&taken);
                    let sum = Arc::clone(&sum);
                    std::thread::spawn(move || loop {
                        match s.steal() {
                            Steal::Success(v) => {
                                taken.fetch_add(1, Ordering::Relaxed);
                                sum.fetch_add(v as usize, Ordering::Relaxed);
                            }
                            Steal::Retry => std::hint::spin_loop(),
                            Steal::Empty => {
                                if stop.load(Ordering::Acquire) == 1 {
                                    break;
                                }
                                // Yield, not spin: on a single-core host a
                                // spinning thief burns whole timeslices the
                                // owner needs to make progress.
                                std::thread::yield_now();
                            }
                        }
                    })
                })
                .collect();
            let mut rng = XorShift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut pushed = 0u64;
            let mut expect_sum = 0usize;
            let total = 50_000u64;
            while pushed < total {
                match rng.next() % 4 {
                    // Bias toward pushes so thieves stay fed.
                    0..=2 => {
                        if w.push(pushed).is_ok() {
                            expect_sum += pushed as usize;
                            pushed += 1;
                        } else if let Some(v) = w.pop() {
                            taken.fetch_add(1, Ordering::Relaxed);
                            sum.fetch_add(v as usize, Ordering::Relaxed);
                        }
                    }
                    _ => {
                        if let Some(v) = w.pop() {
                            taken.fetch_add(1, Ordering::Relaxed);
                            sum.fetch_add(v as usize, Ordering::Relaxed);
                        }
                    }
                }
            }
            while let Some(v) = w.pop() {
                taken.fetch_add(1, Ordering::Relaxed);
                sum.fetch_add(v as usize, Ordering::Relaxed);
            }
            // Let thieves drain the tail before stopping them.
            while taken.load(Ordering::Relaxed) < total as usize {
                std::thread::yield_now();
            }
            stop.store(1, Ordering::Release);
            for t in thieves {
                t.join().unwrap();
            }
            assert_eq!(taken.load(Ordering::Relaxed), total as usize, "seed {seed}");
            assert_eq!(sum.load(Ordering::Relaxed), expect_sum, "seed {seed}");
        }
    }

    #[test]
    fn stress_injector_churn_with_drop_mid_flight() {
        if !stress_enabled() {
            return;
        }
        // Producers and consumers churn a small ring (maximum wrap-around
        // pressure), then the queue is dropped while still holding tasks;
        // drop counts must account for every single token.
        struct Token {
            _payload: u64,
            drops: Arc<AtomicUsize>,
        }
        impl Drop for Token {
            fn drop(&mut self) {
                self.drops.fetch_add(1, Ordering::Relaxed);
            }
        }
        for seed in 1u64..=4 {
            let inj = Arc::new(Injector::<Token>::with_capacity(16));
            let drops = Arc::new(AtomicUsize::new(0));
            let produced = Arc::new(AtomicUsize::new(0));
            let live = Arc::new(AtomicUsize::new(2));
            let producers: Vec<_> = (0..2)
                .map(|p| {
                    let inj = Arc::clone(&inj);
                    let drops = Arc::clone(&drops);
                    let produced = Arc::clone(&produced);
                    let live = Arc::clone(&live);
                    std::thread::spawn(move || {
                        let mut rng = XorShift(seed.wrapping_mul(31).wrapping_add(p) | 1);
                        for _ in 0..20_000 {
                            inj.push(Token {
                                _payload: rng.next(),
                                drops: Arc::clone(&drops),
                            });
                            produced.fetch_add(1, Ordering::Relaxed);
                        }
                        live.fetch_sub(1, Ordering::Release);
                    })
                })
                .collect();
            // One consumer drains while any producer is alive (producers
            // block on the tiny full ring otherwise), then stops — *not*
            // necessarily on an empty queue.
            let consumer = {
                let inj = Arc::clone(&inj);
                let live = Arc::clone(&live);
                std::thread::spawn(move || {
                    let mut got = 0usize;
                    loop {
                        match inj.steal() {
                            Steal::Success(t) => {
                                drop(t);
                                got += 1;
                            }
                            Steal::Retry => std::hint::spin_loop(),
                            Steal::Empty => {
                                if live.load(Ordering::Acquire) == 0 {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            };
            for p in producers {
                p.join().unwrap();
            }
            let consumed = consumer.join().unwrap();
            assert!(
                consumed <= produced.load(Ordering::Relaxed),
                "seed {seed}: consumed more than was produced"
            );
            // Refill a little so the drop below genuinely happens
            // mid-flight (the consumer may have drained the ring).
            let mut rng = XorShift(seed.wrapping_mul(0xD6E8_FEB8_6659_FD93) | 1);
            for _ in 0..5 {
                inj.push(Token {
                    _payload: rng.next(),
                    drops: Arc::clone(&drops),
                });
                produced.fetch_add(1, Ordering::Relaxed);
            }
            drop(inj); // drop mid-flight: remaining tokens dropped here
            assert_eq!(
                drops.load(Ordering::Relaxed),
                produced.load(Ordering::Relaxed),
                "seed {seed}: every token dropped exactly once"
            );
        }
    }

    #[test]
    fn stress_shutdown_while_stealing() {
        if !stress_enabled() {
            return;
        }
        // Thieves keep stealing while the owner drains and drops the
        // deque's worker handle — stealers hold the buffer alive through
        // their Arc, so late steals must stay safe and return Empty.
        for seed in 1u64..=4 {
            let w: Worker<u64> = Worker::with_capacity(256);
            let stolen = Arc::new(AtomicUsize::new(0));
            let stop = Arc::new(AtomicUsize::new(0));
            let thieves: Vec<_> = (0..4)
                .map(|_| {
                    let s = w.stealer();
                    let stop = Arc::clone(&stop);
                    let stolen = Arc::clone(&stolen);
                    std::thread::spawn(move || loop {
                        match s.steal() {
                            Steal::Success(_) => {
                                stolen.fetch_add(1, Ordering::Relaxed);
                            }
                            _ => {
                                if stop.load(Ordering::Acquire) == 1 {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    })
                })
                .collect();
            let mut rng = XorShift(seed.wrapping_mul(0xA24B_AED4_963E_E407) | 1);
            let mut popped = 0usize;
            let mut pushed = 0usize;
            for _ in 0..50_000 {
                if rng.next() % 2 == 0 {
                    if w.push(rng.next()).is_ok() {
                        pushed += 1;
                    }
                } else if w.pop().is_some() {
                    popped += 1;
                }
            }
            // Drop the owner handle while thieves are mid-steal.
            drop(w);
            stop.store(1, Ordering::Release);
            for t in thieves {
                t.join().unwrap();
            }
            assert!(
                stolen.load(Ordering::Relaxed) + popped <= pushed,
                "seed {seed}: cannot take more than was pushed"
            );
        }
    }
}
