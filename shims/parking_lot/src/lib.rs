#![warn(missing_docs)]
//! Offline stand-in for the crates.io
//! [`parking_lot`](https://docs.rs/parking_lot/0.12) crate.
//!
//! Implements the `parking_lot`-shaped API this workspace uses —
//! [`Mutex::lock`] returning a guard directly (no `Result`),
//! [`Mutex::into_inner`] returning `T`, and [`Condvar::wait`] taking
//! `&mut MutexGuard` — as thin wrappers over `std::sync`. Lock poisoning is
//! deliberately ignored, matching real `parking_lot` semantics: a panic
//! while holding the lock does not wedge later lockers (the workspace's
//! `parallel_for` relies on this to stay usable after a propagated panic).

use std::ops::{Deref, DerefMut};
use std::sync;

/// Mutual-exclusion lock whose `lock` never fails (subset of
/// `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|p| p.into_inner())),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

/// RAII guard released on drop (subset of `parking_lot::MutexGuard`).
///
/// The inner `Option` is only ever `None` transiently inside
/// [`Condvar::wait`], which moves the std guard through the std condvar and
/// puts the re-acquired guard back before returning.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Condition variable paired with [`Mutex`] (subset of
/// `parking_lot::Condvar`).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub fn new() -> Self {
        Condvar::default()
    }

    /// Atomically release the guard's lock and block until notified;
    /// the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|p| p.into_inner());
        guard.inner = Some(reacquired);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_roundtrip() {
        let shared = Arc::new((Mutex::new(0usize), Condvar::new()));
        let n = 4;
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let (m, cv) = &*shared;
                    *m.lock() += 1;
                    cv.notify_all();
                })
            })
            .collect();
        let (m, cv) = &*shared;
        let mut done = m.lock();
        while *done < n {
            cv.wait(&mut done);
        }
        drop(done);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock survives a poisoning panic");
    }
}
