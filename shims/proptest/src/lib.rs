#![warn(missing_docs)]
//! Offline stand-in for the crates.io
//! [`proptest`](https://docs.rs/proptest/1) crate.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` inner
//! attribute), range/tuple strategies, [`collection::vec`],
//! [`sample::select`], and the [`prop_assert!`]/[`prop_assert_eq!`]
//! family.
//!
//! Semantics differ from upstream in two deliberate ways: inputs are drawn
//! from a **fixed per-test seed** (runs are reproducible, like a pinned
//! fuzzer corpus, rather than freshly random), and there is **no
//! shrinking** — a failure reports the offending inputs verbatim.

pub mod strategy {
    //! Value-generation strategies (subset of `proptest::strategy`).

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Generates values of type [`Strategy::Value`] from a [`TestRng`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    self.start + (u as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f64, f32);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
}

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range; see
    /// [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: each element drawn from `element`, length drawn
    /// uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling from explicit value sets (subset of `proptest::sample`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly among fixed values; see [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniform choice from a non-empty list of values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = (0..self.options.len()).sample(rng);
            self.options[i].clone()
        }
    }
}

pub mod test_runner {
    //! Test execution plumbing (subset of `proptest::test_runner`).

    use std::fmt;

    /// Per-test configuration (subset of
    /// `proptest::test_runner::Config`, re-exported upstream as
    /// `ProptestConfig`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of input cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the workspace's suites
            // fast while still exercising a meaningful input spread.
            ProptestConfig { cases: 64 }
        }
    }

    /// A property violation detected by a `prop_assert*` macro.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Failure with the given explanation.
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic input generator: SplitMix64 seeded from the test's
    /// fully qualified name, so every test owns a distinct, stable stream.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Generator seeded from `name` (FNV-1a hash).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that checks `body` against `cases` sampled inputs.
///
/// An optional leading `#![proptest_config(expr)]` sets the
/// [`test_runner::ProptestConfig`]; the default runs 64 cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __inputs = {
                        let mut s = String::new();
                        $(s.push_str(&format!(
                            "{} = {:?}, ", stringify!($arg), $arg));)+
                        s
                    };
                    let __result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "property failed at case {}/{}: {}\n  inputs: {}",
                            __case + 1,
                            __config.cases,
                            e,
                            __inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports the property-test inputs on failure (returns a
/// `TestCaseError` instead of panicking directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            l,
                            r,
                        ),
                    ));
                }
            }
        }
    };
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: {} != {}\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            l,
                        ),
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let u = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&u));
            let f = (-2.0f64..5.0).sample(&mut rng);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_tuple_and_select_compose() {
        let mut rng = crate::test_runner::TestRng::from_name("compose");
        let strat = crate::collection::vec((0usize..10, 0usize..10), 0..20);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!(v.len() < 20);
            assert!(v.iter().all(|&(a, b)| a < 10 && b < 10));
        }
        let sel = crate::sample::select(vec!['x', 'y']);
        for _ in 0..50 {
            assert!(matches!(sel.sample(&mut rng), 'x' | 'y'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires strategies to arguments and runs the body.
        #[test]
        fn macro_samples_inputs(a in 1usize..100, b in 0.0f64..1.0) {
            prop_assert!((1..100).contains(&a));
            prop_assert!((0.0..1.0).contains(&b), "b = {b}");
            prop_assert_eq!(a, a);
            prop_assert_ne!(a + 1, a);
        }
    }

    proptest! {
        /// Config-free form uses the default case count.
        #[test]
        fn macro_defaults_apply(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_reports_inputs() {
        proptest! {
            fn inner(v in 10usize..11) {
                prop_assert!(v < 10, "v = {v}");
            }
        }
        inner();
    }
}
